"""Fault plans: arm one named fault and let the data path trip it.

A :class:`FaultPlan` describes *one* fault: the stage it fires at and on
which arrival at that stage (the ``hit``).  The instrumented code calls
:func:`crash_point` (client kill), :func:`torn_op_count` (OSD-side torn
transaction) or :func:`torn_tail_bytes` (client-log torn tail) at its
named stages; a plan made active with :func:`inject` counts arrivals and
fires exactly once.

The stages are a closed vocabulary (``ALL_STAGES``) so the CI crash
matrix can enumerate them and a typo'd stage name is an error rather
than a fault that silently never fires.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import ConfigurationError

# -- stage vocabulary ---------------------------------------------------------

#: client-kill stages (the process dies; in-memory state is lost, the
#: cluster and the client-local persistent write log survive)
STAGE_PRE_LOG_APPEND = "pre-log-append"
STAGE_POST_ACK_PRE_DRAIN = "post-ack-pre-drain"
STAGE_MID_DRAIN = "mid-drain"
STAGE_MID_COPYUP = "mid-copyup"
STAGE_MID_LUKS_HEADER_UPDATE = "mid-luks-header-update"

#: OSD-side fault: a transaction is applied only partially (torn write)
#: and the client dies with it — models losing OSD atomicity.
STAGE_TORN_OSD_WRITE = "torn-osd-write"

#: client-log fault: the crash interrupts the log append itself, leaving
#: a partial (torn) record frame at the tail of the persistent log.
STAGE_TORN_LOG_TAIL = "torn-log-tail"

CRASH_STAGES = (STAGE_PRE_LOG_APPEND, STAGE_POST_ACK_PRE_DRAIN,
                STAGE_MID_DRAIN, STAGE_MID_COPYUP,
                STAGE_MID_LUKS_HEADER_UPDATE)
OSD_FAULTS = (STAGE_TORN_OSD_WRITE,)
LOG_FAULTS = (STAGE_TORN_LOG_TAIL,)
ALL_STAGES = CRASH_STAGES + OSD_FAULTS + LOG_FAULTS

#: OSD-kill stages (the *daemon* dies, the client survives): the cluster
#: marks the victim down mid-operation and the client's retry/failover
#: machinery must carry every acked write through.  A separate vocabulary
#: from ``ALL_STAGES`` — the client-kill harness and the failure drill
#: enumerate different matrices.
STAGE_KILL_PRIMARY_MID_TXN = "kill-primary-mid-txn"
STAGE_KILL_REPLICA_MID_TXN = "kill-replica-mid-txn"
STAGE_KILL_DURING_BACKFILL = "kill-during-backfill"
#: EC pools: a chunk OSD dies mid-stripe-transaction — the shard committed
#: locally but the stripe never acked, so the client must retry against
#: the surviving shards (and backfill later reconstructs the stale chunk).
STAGE_KILL_EC_SHARD_MID_TXN = "kill-ec-shard-mid-txn"

OSD_KILL_STAGES = (STAGE_KILL_PRIMARY_MID_TXN, STAGE_KILL_REPLICA_MID_TXN,
                   STAGE_KILL_DURING_BACKFILL, STAGE_KILL_EC_SHARD_MID_TXN)

#: the subsets of ``OSD_KILL_STAGES`` that apply per pool type: the
#: primary/replica kill sites live in the replicated dispatch path, the
#: ec-shard kill site in the stripe dispatch path; kill-during-backfill
#: fires in the shared backfill loop, so it covers both (for EC pools it
#: lands mid ec-repair).
REPLICATED_KILL_STAGES = (STAGE_KILL_PRIMARY_MID_TXN,
                          STAGE_KILL_REPLICA_MID_TXN,
                          STAGE_KILL_DURING_BACKFILL)
EC_KILL_STAGES = (STAGE_KILL_EC_SHARD_MID_TXN, STAGE_KILL_DURING_BACKFILL)


class ClientCrash(BaseException):
    """The injected client death.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    that library code catching ``Exception`` cannot absorb it: nothing on
    the data path gets to handle its own death.  Tests catch it
    explicitly, then recover from the surviving durable state.
    """

    def __init__(self, stage: str, detail: str = "") -> None:
        self.stage = stage
        self.detail = detail
        super().__init__(f"injected client crash at stage {stage!r}"
                         + (f" ({detail})" if detail else ""))


@dataclass
class FaultPlan:
    """One armed fault: fire at the ``hit``-th arrival of ``stage``.

    ``hit`` is 1-based: ``hit=1`` fires on the first arrival.  For the
    torn faults the plan also decides how much of the victim survives:
    ``torn_keep`` ops of the transaction (``torn-osd-write``) or a seeded
    random fraction of the record frame (``torn-log-tail``).
    """

    stage: str
    hit: int = 1
    #: for torn-osd-write: how many ops of the victim transaction are
    #: applied before the tear (None = a seeded random strict prefix)
    torn_keep: Optional[int] = None
    #: seed of the plan's private RNG (tear geometry); printed by the
    #: harness so any run is reproducible
    seed: int = 0
    # -- state ---------------------------------------------------------------
    hits_seen: int = field(default=0, repr=False)
    fired: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.stage not in ALL_STAGES:
            raise ConfigurationError(
                f"unknown fault stage {self.stage!r}; valid: {ALL_STAGES}")
        if self.hit < 1:
            raise ConfigurationError("fault hit must be >= 1")
        self._rng = random.Random(self.seed)

    @classmethod
    def random_plan(cls, stage: str, seed: int, max_hit: int = 8) -> "FaultPlan":
        """A plan whose trigger point is drawn from ``seed`` (printed-seed
        randomized testing: the CI crash matrix derives the hit from
        ``FAULT_SEED`` so any failure is rerunnable)."""
        rng = random.Random(f"{seed}/{stage}")
        return cls(stage=stage, hit=rng.randint(1, max(1, max_hit)), seed=seed)

    # -- firing --------------------------------------------------------------

    def _arrived(self, stage: str) -> bool:
        """Count one arrival; True when this is the firing one."""
        if self.fired or stage != self.stage:
            return False
        self.hits_seen += 1
        if self.hits_seen < self.hit:
            return False
        self.fired = True
        return True

    def tear_point(self, total: int) -> int:
        """How much of a torn victim survives (a strict prefix of ``total``)."""
        if self.torn_keep is not None:
            return max(0, min(self.torn_keep, total - 1))
        if total <= 1:
            return 0
        return self._rng.randint(0, total - 1)


# -- the active plan ----------------------------------------------------------

_active: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The currently injected plan (None outside :func:`inject`)."""
    return _active


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Make ``plan`` the active fault for the duration of the block."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


def crash_point(stage: str) -> None:
    """Die here if the active plan targets this stage and the hit is due.

    Instrumented stages cost one attribute load + comparison when no plan
    is active, so they stay in the production data path permanently.
    """
    plan = _active
    if plan is not None and plan._arrived(stage):
        raise ClientCrash(stage)


def torn_op_count(total_ops: int) -> Optional[int]:
    """OSD hook: ops of this transaction to apply before tearing it.

    Returns ``None`` (apply everything, the normal case) unless the
    active plan is an armed ``torn-osd-write`` whose hit is due; then the
    returned strict prefix is applied and the OSD raises
    :class:`ClientCrash` — the client dies with the torn object state.
    """
    plan = _active
    if plan is None or not plan._arrived(STAGE_TORN_OSD_WRITE):
        return None
    return plan.tear_point(total_ops)


@dataclass
class OsdFaultPlan:
    """One armed OSD kill: fire at the ``hit``-th arrival of ``stage``.

    Same fire-once hit-counting and seeding discipline as
    :class:`FaultPlan`, but the victim is a *daemon*, not the client: the
    instrumented call site (:func:`osd_kill_due`) reports that the kill is
    due and the caller marks the OSD down on the cluster — no exception
    crosses the client, whose retry/failover path is exactly what the
    failure matrix is exercising.
    """

    stage: str
    hit: int = 1
    seed: int = 0
    # -- state ---------------------------------------------------------------
    hits_seen: int = field(default=0, repr=False)
    fired: bool = field(default=False, repr=False)
    #: OSD id the kill landed on (recorded by the call site for reports)
    victim: Optional[int] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.stage not in OSD_KILL_STAGES:
            raise ConfigurationError(
                f"unknown OSD kill stage {self.stage!r}; "
                f"valid: {OSD_KILL_STAGES}")
        if self.hit < 1:
            raise ConfigurationError("fault hit must be >= 1")

    @classmethod
    def random_plan(cls, stage: str, seed: int,
                    max_hit: int = 8) -> "OsdFaultPlan":
        """A plan whose trigger point is drawn from ``seed`` (printed-seed
        randomized testing, mirroring :meth:`FaultPlan.random_plan`)."""
        rng = random.Random(f"{seed}/{stage}")
        return cls(stage=stage, hit=rng.randint(1, max(1, max_hit)), seed=seed)

    def _arrived(self, stage: str) -> bool:
        if self.fired or stage != self.stage:
            return False
        self.hits_seen += 1
        if self.hits_seen < self.hit:
            return False
        self.fired = True
        return True


_active_osd_fault: Optional[OsdFaultPlan] = None


def active_osd_fault() -> Optional[OsdFaultPlan]:
    """The currently injected OSD kill plan (None outside the context)."""
    return _active_osd_fault


@contextmanager
def inject_osd_fault(plan: OsdFaultPlan) -> Iterator[OsdFaultPlan]:
    """Make ``plan`` the armed OSD kill for the duration of the block."""
    global _active_osd_fault
    previous = _active_osd_fault
    _active_osd_fault = plan
    try:
        yield plan
    finally:
        _active_osd_fault = previous


def osd_kill_due(stage: str, victim: int) -> bool:
    """Instrumented kill point: is the armed OSD fault due here?

    Returns True exactly once, on the firing arrival; the caller then
    marks ``victim`` down on its cluster.  ``victim`` is recorded on the
    plan so harnesses can report which daemon died.
    """
    plan = _active_osd_fault
    if plan is None or not plan._arrived(stage):
        return False
    plan.victim = victim
    return True


def torn_tail_bytes(frame_size: int) -> Optional[int]:
    """Write-log hook: bytes of this record frame that reach the media.

    Returns ``None`` normally; for an armed ``torn-log-tail`` hit it
    returns a strict prefix of the frame — the append then persists only
    that prefix and raises :class:`ClientCrash`, leaving a torn tail for
    recovery to discard.
    """
    plan = _active
    if plan is None or not plan._arrived(STAGE_TORN_LOG_TAIL):
        return None
    return plan.tear_point(frame_size)
