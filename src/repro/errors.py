"""Exception hierarchy shared by every subsystem in the reproduction.

All errors raised by the library derive from :class:`ReproError` so that a
caller embedding the library can catch a single base class.  Subsystems
define narrower classes below; they never raise bare ``ValueError`` or
``RuntimeError`` for conditions a caller could reasonably want to handle.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeySizeError(CryptoError):
    """A cipher was given a key of unsupported length."""


class IVSizeError(CryptoError):
    """An IV/tweak of the wrong length was supplied."""


class DataSizeError(CryptoError):
    """Plaintext/ciphertext length is invalid for the selected mode."""


class IntegrityError(ReproError):
    """Stored data failed an integrity (MAC / AEAD) check on read."""


class AuthenticationError(CryptoError, IntegrityError):
    """A MAC or AEAD tag failed verification."""


class StorageError(ReproError):
    """Base class for the simulated storage stack."""


class DeviceError(StorageError):
    """Errors from the simulated block device layer."""


class OutOfRangeError(DeviceError):
    """An IO touched sectors outside of the device/image."""


class AlignmentError(DeviceError):
    """An IO violated an alignment requirement that the caller promised."""


class KVStoreError(StorageError):
    """Errors from the embedded LSM key-value store."""

class KVClosedError(KVStoreError):
    """The key-value store was used after :meth:`close`."""


class RadosError(StorageError):
    """Errors from the simulated RADOS cluster."""


class ObjectNotFoundError(RadosError):
    """The requested RADOS object does not exist."""


class PoolNotFoundError(RadosError):
    """The requested pool does not exist."""


class OsdDownError(RadosError):
    """An operation was dispatched to an OSD that is not serving.

    Internal to the RADOS layer: the client's retry/failover logic catches
    it, recomputes the acting set and retries — callers above the client
    only ever see :class:`DegradedClusterError` once no replica remains.
    """


class DegradedClusterError(RadosError):
    """No acting replica can serve the operation (the EIO of the stack).

    Raised by :class:`~repro.rados.client.IoCtx` after retry, backoff and
    replica failover are exhausted: every replica of the object is down,
    out or still recovering.
    """


class SnapshotError(RadosError):
    """Snapshot creation/removal/rollback failed."""


class TransactionError(RadosError):
    """An atomic RADOS transaction could not be applied."""


class RbdError(StorageError):
    """Errors from the virtual-disk (RBD image) layer."""


class ImageExistsError(RbdError):
    """Attempt to create an image that already exists."""


class ImageNotFoundError(RbdError):
    """Attempt to open an image that does not exist."""


class ImageBusyError(RbdError):
    """The image is open in a mode that conflicts with the request."""


class CloneError(RbdError):
    """A clone operation (clone/flatten/chain walk) is invalid."""


class EncryptionFormatError(ReproError):
    """An encryption format header is malformed or unsupported."""


class PassphraseError(EncryptionFormatError):
    """No key slot could be unlocked with the supplied passphrase."""


class WorkloadError(ReproError):
    """A workload specification is invalid."""


class ConfigurationError(ReproError):
    """A simulation or cluster configuration value is invalid."""
