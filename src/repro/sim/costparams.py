"""Cost parameters of the simulated testbed.

The defaults are calibrated so that the *baseline* (LUKS2, no per-sector
metadata) roughly matches the scale of the paper's Fig. 3 measurements on
their 3-node cluster (NVMe OSDs, ~13 Gb/s effective client link, 3-way
replication): reads plateauing around ~2.4 GB/s and writes around
~1.1 GB/s for multi-megabyte IOs, with IOPS/CPU-limited behaviour at 4 KB.
Absolute values are calibration constants — the comparisons between
encryption layouts are *produced* by the simulation (extra device
operations, read-modify-write turns, OMAP key insertions), not assumed.
See DESIGN.md §2 and EXPERIMENTS.md for the calibration discussion.

Two kinds of cost appear throughout:

* **latency** — time on the critical path of a single operation; feeds the
  queue-depth (Little's law) bound.
* **occupancy** — time a shared resource is kept busy; feeds the
  bottleneck-resource bound.  For an NVMe device the occupancy of one
  operation (a few µs of channel time) is much smaller than its latency
  (tens of µs), which is why queue depth helps throughput at all.

All times are microseconds, all bandwidths are MiB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..errors import ConfigurationError

#: valid values of :attr:`CostParameters.sim_mode` (and the CLI's
#: ``--sim-mode`` flag).
SIM_MODES = ("analytic", "events")

#: valid values of :attr:`CostParameters.event_engine` (and the CLI's
#: ``--event-engine`` flag): "compact" replays flattened numpy trace
#: columns through the index-based event machine (and, for open-loop
#: arrivals, the fully vectorized queue scans); "legacy" is the original
#: per-op object/closure scheduler, kept selectable so the equivalence
#: suite can pin the two against each other.
EVENT_ENGINES = ("compact", "legacy")


@dataclass
class CostParameters:
    """Tunable constants of the simulated hardware and software stack."""

    # --- NVMe device (aggregate per OSD node) --------------------------------
    device_read_latency_us: float = 65.0     #: critical-path latency of a read
    device_write_latency_us: float = 25.0    #: critical-path latency of a write
    device_op_occupancy_us: float = 4.0      #: channel occupancy per operation
    device_read_bandwidth_mbps: float = 2800.0
    device_write_bandwidth_mbps: float = 1150.0
    #: additional occupancy charged once per unaligned (read-modify-write) write
    device_rmw_penalty_us: float = 8.0
    #: additional critical-path latency of the read-before-write turn
    device_rmw_latency_us: float = 65.0
    #: writes strictly smaller than this are treated as deferred/journaled
    #: small writes (BlueStore-style): no read-modify-write turn is charged.
    deferred_write_threshold: int = 4096
    sector_size: int = 4096

    # --- network ------------------------------------------------------------
    network_round_trip_us: float = 90.0      #: client <-> primary OSD RTT
    replication_hop_us: float = 45.0         #: primary -> replica latency
    client_bandwidth_mbps: float = 2600.0    #: client NIC effective bandwidth
    cluster_bandwidth_mbps: float = 9000.0   #: aggregate backend network

    # --- OSD request processing ---------------------------------------------
    osd_op_cost_us: float = 20.0             #: fixed CPU cost per transaction/read
    osd_subop_cost_us: float = 3.0           #: CPU cost of each op inside it
    osd_byte_cost_us_per_kib: float = 0.010  #: CPU cost of moving payload
    #: how many transaction pipelines one OSD node keeps busy concurrently
    #: (shards); OSD work (CPU + device occupancy) is divided by this.
    osd_shards: int = 1

    # --- OMAP / embedded key-value store -------------------------------------
    omap_op_cost_us: float = 2.0             #: fixed cost of one OMAP op in a txn
    omap_write_key_cost_us: float = 1.8      #: per key inserted/updated
    omap_read_key_cost_us: float = 0.2       #: per key returned by a lookup
    omap_byte_cost_us_per_kib: float = 0.25  #: per KiB of key+value payload
    omap_compaction_factor: float = 0.25     #: amortised compaction overhead
    wal_group_commit: int = 8                #: WAL appends sharing one flush

    # --- client (libRBD) ------------------------------------------------------
    client_op_cost_us: float = 12.0          #: per-IO client dispatch cost
    crypto_block_cost_us: float = 0.8        #: AES-NI cost per 4 KiB block
    iv_generation_cost_us: float = 0.15      #: DRBG cost per random IV
    #: Reed-Solomon encode cost per KiB of stripe output (all k+m chunks);
    #: charged like the crypto kernels — table-driven GF(256) math runs at
    #: the same order as AES-NI (crypto_block_cost_us is 0.8 us / 4 KiB).
    ec_encode_cost_us_per_kib: float = 0.20
    #: Reed-Solomon decode cost per KiB of stripe reconstructed; decode
    #: pays a matrix inversion on top of the multiply-XOR sweep, so it
    #: runs a bit hotter than encode.
    ec_decode_cost_us_per_kib: float = 0.35
    #: client CPU cost of one block-cache lookup + copy (charged once per
    #: cached operation by :class:`repro.cache.CachedImage`)
    cache_hit_cost_us: float = 2.0
    #: fixed latency of one persistent-write-log append (local SSD/PMEM
    #: pool; charged by :class:`repro.pwl.PwlImage` at the ack point)
    pwl_append_latency_us: float = 6.0
    #: transfer bandwidth of the persistent-write-log media
    pwl_bandwidth_mbps: float = 2000.0

    # --- failure handling and recovery ----------------------------------------
    #: time a client burns before declaring one dispatch to a dead OSD
    #: failed (the per-op timeout; charged as critical-path latency on
    #: every failed attempt).
    osd_timeout_us: float = 2000.0
    #: base of the client's bounded exponential retry backoff; attempt
    #: ``k`` waits ``min(base * 2**k, cap)`` plus seeded jitter.
    retry_backoff_base_us: float = 100.0
    #: cap of the exponential retry backoff.
    retry_backoff_cap_us: float = 8000.0
    #: dispatch attempts (first try included) before a write/read gives up.
    retry_max_attempts: int = 5
    #: fixed OSD CPU cost of one backfill push (scan + object bookkeeping
    #: on top of the data movement itself).
    recovery_op_cost_us: float = 30.0
    #: throttled bandwidth one backfill push may use on the backend
    #: network — recovery deliberately runs below wire speed so client
    #: traffic survives a rebuild storm.
    recovery_bandwidth_mbps: float = 600.0

    # --- cluster shape --------------------------------------------------------
    osd_count: int = 3
    replica_count: int = 3

    #: which performance model converts recorded work into elapsed time:
    #: "analytic" (closed-form two-bound fast path) or "events" (discrete-
    #: event replay through per-OSD FIFO queues — the accurate path, and
    #: the only one that can express multi-client contention).
    sim_mode: str = "analytic"

    #: which event-replay implementation the "events" mode uses: "compact"
    #: (flattened trace columns, index-based event machine, vectorized
    #: open-loop scans — the fleet-scale path) or "legacy" (the original
    #: per-op object scheduler, kept for equivalence comparisons).
    event_engine: str = "compact"

    #: how many independent contention domains the event replay is split
    #: into: clients (and the OSD queues they drive) are partitioned into
    #: ``sim_shards`` shards simulated independently and merged
    #: deterministically.  1 reproduces the single shared-cluster replay
    #: exactly; >1 trades cross-shard OSD contention for parallelism.
    sim_shards: int = 1

    #: worker processes used to advance shards in parallel.  Purely an
    #: execution knob: results are bit-identical for any ``sim_jobs``
    #: (the shard partition and the merge order depend only on
    #: ``sim_shards``).
    sim_jobs: int = 1

    #: fraction of the simulated elapsed time a resource's busy time must
    #: reach before an event replay labels the run with that resource as
    #: its bound; below it the run is reported as paced by operation
    #: latency at the configured depth ("latency(qd)") or by the open-loop
    #: arrival process ("arrival(open-loop)").  One named knob shared by
    #: every event engine (legacy, compact, vectorized) so the paths agree
    #: on what "saturated" means; the analytic estimate needs no threshold
    #: because its winning resource bound is saturated by construction.
    saturation_threshold: float = 0.8

    #: free-form labels describing the calibration, carried into reports
    notes: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.osd_count <= 0:
            raise ConfigurationError("osd_count must be positive")
        if not 1 <= self.replica_count <= self.osd_count:
            raise ConfigurationError(
                "replica_count must be between 1 and osd_count")
        if self.sector_size <= 0 or self.sector_size % 512:
            raise ConfigurationError("sector_size must be a multiple of 512")
        if self.osd_shards <= 0:
            raise ConfigurationError("osd_shards must be positive")
        if self.wal_group_commit <= 0:
            raise ConfigurationError("wal_group_commit must be positive")
        if self.sim_mode not in SIM_MODES:
            raise ConfigurationError(
                f"sim_mode must be one of {SIM_MODES}, got {self.sim_mode!r}")
        if self.event_engine not in EVENT_ENGINES:
            raise ConfigurationError(
                f"event_engine must be one of {EVENT_ENGINES}, "
                f"got {self.event_engine!r}")
        if self.sim_shards <= 0:
            raise ConfigurationError("sim_shards must be positive")
        if self.sim_jobs <= 0:
            raise ConfigurationError("sim_jobs must be positive")
        if not 0.0 < self.saturation_threshold <= 1.0:
            raise ConfigurationError(
                "saturation_threshold must be within (0, 1]")
        if self.pwl_append_latency_us < 0:
            raise ConfigurationError("pwl_append_latency_us must be >= 0")
        if self.retry_max_attempts < 1:
            raise ConfigurationError("retry_max_attempts must be >= 1")
        for name in ("osd_timeout_us", "retry_backoff_base_us",
                     "retry_backoff_cap_us", "recovery_op_cost_us",
                     "ec_encode_cost_us_per_kib", "ec_decode_cost_us_per_kib"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        for name in ("device_read_bandwidth_mbps", "device_write_bandwidth_mbps",
                     "client_bandwidth_mbps", "cluster_bandwidth_mbps",
                     "pwl_bandwidth_mbps", "recovery_bandwidth_mbps"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    # -- convenience conversions ----------------------------------------------

    def device_transfer_us(self, nbytes: int, is_write: bool) -> float:
        """Time to move ``nbytes`` to/from one device (excludes op cost)."""
        bw = (self.device_write_bandwidth_mbps if is_write
              else self.device_read_bandwidth_mbps)
        return nbytes / (bw * 1024 * 1024) * 1e6

    def client_transfer_us(self, nbytes: int) -> float:
        """Time for ``nbytes`` to cross the client NIC."""
        return nbytes / (self.client_bandwidth_mbps * 1024 * 1024) * 1e6

    def cluster_transfer_us(self, nbytes: int) -> float:
        """Time for ``nbytes`` of replication traffic on the backend network."""
        return nbytes / (self.cluster_bandwidth_mbps * 1024 * 1024) * 1e6

    def with_overrides(self, **kwargs: object) -> "CostParameters":
        """Return a copy with selected fields replaced (ablation studies)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


def default_cost_parameters() -> CostParameters:
    """The calibration used by the benchmark harness (see EXPERIMENTS.md)."""
    params = CostParameters()
    params.notes["calibration"] = (
        "matched to the scale of HotStorage'22 Fig.3 baseline: "
        "~2.4 GB/s large reads, ~1.1 GB/s large writes, CPU/IOPS-bound 4 KiB IOs")
    return params
