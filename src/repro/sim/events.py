"""Discrete-event simulation core: a time-ordered event heap.

The analytic performance model (:mod:`repro.sim.perfmodel`) collapses a
whole run into two closed-form bounds.  The event-driven engine instead
*replays* the run: every hand-off in the life of an operation (client
dispatch, network arrival at the primary OSD, replication push, replica
commit, acknowledgement) is an :class:`Event` on one shared
:class:`EventLoop`, and shared resources are FIFO service queues
(:mod:`repro.sim.scheduler`) whose waiting time emerges from the event
order instead of being assumed away.

The loop is deliberately minimal: a binary heap of ``(time, seq,
callback)`` entries.  Ties are broken by scheduling order (``seq``), which
makes runs fully deterministic — two events scheduled for the same
microsecond fire in the order they were scheduled.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

from ..errors import ConfigurationError


class EventLoop:
    """A minimal deterministic discrete-event loop.

    Events are ``(time_us, seq, callback)`` tuples on a heap; :meth:`run`
    pops them in time order and invokes the callbacks, which may schedule
    further events.  ``now`` is only valid while the loop is running (it is
    the timestamp of the event being processed).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Simulated time (µs) of the event currently being processed."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events the loop has fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still waiting on the heap."""
        return len(self._heap)

    def schedule_at(self, time_us: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at absolute time ``time_us``."""
        if time_us < self._now:
            raise ConfigurationError(
                f"cannot schedule an event in the past "
                f"({time_us:.3f} < now {self._now:.3f})")
        heapq.heappush(self._heap, (time_us, self._seq, callback))
        self._seq += 1

    def schedule_after(self, delay_us: float,
                       callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay_us`` after the current time."""
        if delay_us < 0:
            raise ConfigurationError("event delay must be non-negative")
        self.schedule_at(self._now + delay_us, callback)

    def run(self) -> float:
        """Process every event in time order; returns the final time (µs)."""
        while self._heap:
            time_us, _seq, callback = heapq.heappop(self._heap)
            self._now = time_us
            self._events_processed += 1
            callback()
        return self._now
