"""Cost ledger: the accounting record every simulated component writes to.

A :class:`CostLedger` accumulates two kinds of information:

* **counters** — physical work items (device sectors written, OMAP keys
  touched, read-modify-write turns, network bytes ...).  These are what the
  paper's §3.3 reasons about analytically and they are reported verbatim in
  the benchmark output.
* **resource busy time** — microseconds of busy time attributed to named
  resources (``osd.device``, ``osd.cpu``, ``client.net`` ...), from which
  the performance model derives throughput.

Per-IO critical-path latency is returned separately via :class:`OpReceipt`
objects so the workload runner can apply a queue-depth (Little's law)
bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from ..errors import ConfigurationError


# Resource names used across the stack.
RES_CLIENT_NET = "client.net"
RES_CLIENT_CPU = "client.cpu"
RES_CLUSTER_NET = "cluster.net"
RES_OSD_DEVICE = "osd.device"
RES_OSD_CPU = "osd.cpu"

ALL_RESOURCES = (RES_CLIENT_NET, RES_CLIENT_CPU, RES_CLUSTER_NET,
                 RES_OSD_DEVICE, RES_OSD_CPU)


@dataclass
class OpReceipt:
    """Critical-path latency and byte count of one client-visible operation."""

    latency_us: float = 0.0
    bytes_moved: int = 0

    def extend(self, other: "OpReceipt") -> None:
        """Serial composition: the other op happens after this one."""
        self.latency_us += other.latency_us
        self.bytes_moved += other.bytes_moved

    def merge_parallel(self, other: "OpReceipt") -> None:
        """Parallel composition: both ops overlap; latency is the max."""
        self.latency_us = max(self.latency_us, other.latency_us)
        self.bytes_moved += other.bytes_moved


@dataclass
class OsdVisit:
    """One RADOS operation's stop at one OSD, as seen by the event engine.

    ``service_us`` is the *occupancy* the visit demands of the OSD's shard
    servers (CPU busy time plus device channel occupancy — the quantity
    that limits throughput), while ``latency_us`` is the critical-path time
    until the OSD acknowledges (device latencies included).  ``hop_us`` and
    ``push_us`` are only non-zero for replica visits: the primary→replica
    network latency and the backend-network transfer occupancy of the
    replication push.
    """

    osd_id: int
    service_us: float
    latency_us: float
    hop_us: float = 0.0
    push_us: float = 0.0


@dataclass
class OpTrace:
    """One RADOS-level operation (a write transaction or read op).

    Recorded by :class:`~repro.rados.client.IoCtx` while
    :attr:`CostLedger.trace_ops` is enabled; replayed by
    :mod:`repro.sim.scheduler`.  The first entry of ``visits`` is the
    primary; the rest are replicas (writes only).
    """

    kind: str                      #: one of :data:`repro.obs.names.OP_KINDS`
    client_cpu_us: float           #: client dispatch CPU service time
    client_net_us: float           #: client NIC transfer service time
    network_us: float              #: request/response round-trip latency
    visits: List[OsdVisit] = field(default_factory=list)
    bytes_moved: int = 0
    #: failed dispatch attempts absorbed before this op succeeded (their
    #: timeout/backoff cost is folded into ``network_us``)
    retries: int = 0

    @property
    def primary(self) -> OsdVisit:
        """The primary OSD's visit (first in dispatch order)."""
        return self.visits[0]

    @property
    def replicas(self) -> Tuple[OsdVisit, ...]:
        """Replica visits (empty for reads)."""
        return tuple(self.visits[1:])


@dataclass
class ClientOpTrace:
    """One client-visible operation: the RADOS ops it decomposed into.

    A scalar aligned write is one trace; an unaligned write is a
    read-modify-write chain of two; a flushed engine window covering
    ``requests`` client requests is however many per-object transactions
    the flush produced.  The event engine executes the traces of one
    client op as a serial chain (matching the serial receipt composition
    of the RMW turn) and amortizes the chain's latency over ``requests``.
    """

    client: int = 0                #: index of the issuing client stream
    requests: int = 1              #: client requests this op completes
    traces: List[OpTrace] = field(default_factory=list)


class CostLedger:
    """Accumulates counters and per-resource busy time."""

    def __init__(self) -> None:
        # Plain dicts on purpose: a defaultdict would let a mere subscript
        # *read* of a misspelled counter materialize a fresh key, silently
        # polluting snapshot()/diff() key sets.
        self.counters: Dict[str, float] = {}
        self.resource_us: Dict[str, float] = {}
        self.latency_sum_us: float = 0.0
        self.op_count: int = 0
        #: when True, the RADOS layer records an :class:`OpTrace` per
        #: operation for the event-driven engine (off by default: traces
        #: cost memory and only the event path reads them).
        self.trace_ops: bool = False
        #: client stream the next sealed op belongs to (multi-client runs).
        self.trace_client: int = 0
        #: sealed client-visible operations, in completion order.
        self.client_ops: List[ClientOpTrace] = []
        self._open_visits: List[OsdVisit] = []
        self._open_traces: List[OpTrace] = []
        self._pending_client_cpu_us: float = 0.0

    # -- recording ------------------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a named counter.

        Counter names form a declared namespace
        (:data:`repro.obs.names.COUNTERS`); the test suite scans every
        ``count(...)`` literal in ``src/`` against it.
        """
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def busy(self, resource: str, microseconds: float) -> None:
        """Attribute busy time to a resource."""
        if microseconds < 0:
            raise ConfigurationError("busy time must be non-negative")
        self.resource_us[resource] = (self.resource_us.get(resource, 0.0)
                                      + microseconds)

    def finish_op(self, receipt: OpReceipt, ops: int = 1) -> None:
        """Record the completion of ``ops`` client-visible operations.

        The batched I/O engine completes a whole window of requests with a
        single receipt; passing ``ops`` > 1 attributes the window's
        critical-path latency to the batch once while still counting every
        request toward IOPS, so batched and per-request runs stay
        comparable.
        """
        if ops <= 0:
            raise ConfigurationError("ops must be positive")
        self.latency_sum_us += receipt.latency_us
        self.op_count += ops
        if self.trace_ops:
            # Seal even when no RADOS op was recorded (e.g. a sparse read
            # that never reached an OSD): the event replay must still count
            # the request, as a zero-cost operation, to keep request totals
            # and closed-loop pacing consistent with the analytic path.
            self.client_ops.append(ClientOpTrace(
                client=self.trace_client, requests=ops,
                traces=self._open_traces))
            self._open_traces = []

    # -- event-engine trace capture --------------------------------------------

    def record_osd_visit(self, visit: OsdVisit) -> None:
        """Attach one OSD's service/latency record to the op being traced.

        Called by the OSD layer (:mod:`repro.rados.osd`) while a
        transaction or read executes; the client layer drains the visits
        into the finished :class:`OpTrace`.  No-op unless tracing is on.
        """
        if self.trace_ops:
            self._open_visits.append(visit)

    def take_osd_visits(self) -> List[OsdVisit]:
        """Drain the visits recorded since the last RADOS op completed."""
        visits = self._open_visits
        self._open_visits = []
        return visits

    def record_op_trace(self, trace: OpTrace) -> None:
        """Queue a finished RADOS op trace for the next :meth:`finish_op`."""
        if self.trace_ops:
            # Client CPU charged before the RADOS call (encrypt-before-
            # write) was parked in the pending bucket; it belongs to this
            # op's dispatch work.
            trace.client_cpu_us += self._pending_client_cpu_us
            self._pending_client_cpu_us = 0.0
            self._open_traces.append(trace)

    def attribute_client_cpu(self, microseconds: float) -> None:
        """Fold client CPU charged outside the RADOS client into a trace.

        The crypto dispatcher charges ``client.cpu`` busy time around its
        RADOS calls (encrypt before a write, decrypt after a read); the
        event replay must see that demand on the client CPU queue or
        encrypted workloads under-model the client.  Decrypt-after-read
        lands on the just-recorded trace; encrypt-before-write waits for
        the next one.
        """
        if not self.trace_ops:
            return
        if self._open_traces:
            self._open_traces[-1].client_cpu_us += microseconds
        else:
            self._pending_client_cpu_us += microseconds

    def take_open_traces(self) -> List[OpTrace]:
        """Claim the RADOS op traces recorded since the last seal.

        The batched engine uses this to attach a flushed window's traces
        to its :class:`~repro.engine.pipeline.Completion` directly — a
        window's flush and its completion are collected at different
        times, so waiting for :meth:`finish_op` to seal would let another
        window's traces blend in.
        """
        traces = self._open_traces
        self._open_traces = []
        return traces

    def restore_op_traces(self, traces: List[OpTrace]) -> None:
        """Put previously-claimed traces back so the next seal carries them.

        Used when completing a batched-engine window: the pipeline claimed
        the window's traces at flush time (:meth:`take_open_traces`); the
        runner restores them just before :meth:`finish_op` so every
        client-visible operation is sealed through the same path.
        """
        if self.trace_ops and traces:
            self._open_traces.extend(traces)

    def discard_open_traces(self) -> None:
        """Drop unsealed traces/visits (cleanup after an aborted run).

        An op that fails partway — an RMW read that completed before its
        write raised, a primary visit recorded before a replica rejected
        the transaction — leaves entries in the open buffers; clearing
        them keeps a later run on the same cluster from adopting them.
        """
        self._open_visits = []
        self._open_traces = []
        self._pending_client_cpu_us = 0.0

    def pop_client_ops(self, since: int = 0) -> List[ClientOpTrace]:
        """Claim (and remove) client op traces sealed after index ``since``.

        Removal bounds the ledger's memory across repeated event-mode runs
        on one cluster.
        """
        ops = self.client_ops[since:]
        del self.client_ops[since:]
        return ops

    def record_batch(self, requests: int, blocks: int) -> None:
        """Record one flushed engine batch of ``requests`` covering ``blocks``.

        Maintains the ``engine.batches`` / ``engine.batched_requests`` /
        ``engine.batched_blocks`` counters from which
        :meth:`mean_batch_blocks` derives the achieved amortization.
        """
        self.count("engine.batches")
        self.count("engine.batched_requests", requests)
        self.count("engine.batched_blocks", blocks)

    def mean_batch_blocks(self) -> float:
        """Average blocks per flushed engine batch (0 if none recorded)."""
        batches = self.counter("engine.batches")
        if not batches:
            return 0.0
        return self.counter("engine.batched_blocks") / batches

    # -- inspection -------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Return a counter (0 if never incremented)."""
        return self.counters.get(name, 0.0)

    def resource(self, name: str) -> float:
        """Return accumulated busy microseconds for a resource."""
        return self.resource_us.get(name, 0.0)

    def mean_latency_us(self) -> float:
        """Average critical-path latency over all finished operations."""
        if self.op_count == 0:
            return 0.0
        return self.latency_sum_us / self.op_count

    def snapshot(self) -> "CostLedger":
        """Deep copy of the current state (used to diff before/after a run)."""
        clone = CostLedger()
        clone.counters = dict(self.counters)
        clone.resource_us = dict(self.resource_us)
        clone.latency_sum_us = self.latency_sum_us
        clone.op_count = self.op_count
        clone.client_ops = list(self.client_ops)
        return clone

    def diff(self, since: "CostLedger") -> "CostLedger":
        """Return a ledger holding the activity since ``since`` was captured."""
        delta = CostLedger()
        keys = set(self.counters) | set(since.counters)
        for key in keys:
            delta.counters[key] = self.counters.get(key, 0.0) - since.counters.get(key, 0.0)
        keys = set(self.resource_us) | set(since.resource_us)
        for key in keys:
            delta.resource_us[key] = (self.resource_us.get(key, 0.0)
                                      - since.resource_us.get(key, 0.0))
        delta.latency_sum_us = self.latency_sum_us - since.latency_sum_us
        delta.op_count = self.op_count - since.op_count
        return delta

    def items(self) -> Iterator:
        """Iterate over (counter name, value) pairs, sorted by name."""
        return iter(sorted(self.counters.items()))

    def reset(self) -> None:
        """Clear all recorded activity."""
        self.counters.clear()
        self.resource_us.clear()
        self.latency_sum_us = 0.0
        self.op_count = 0
        self.client_ops = []
        self._open_visits = []
        self._open_traces = []
        self._pending_client_cpu_us = 0.0
