"""Cost ledger: the accounting record every simulated component writes to.

A :class:`CostLedger` accumulates two kinds of information:

* **counters** — physical work items (device sectors written, OMAP keys
  touched, read-modify-write turns, network bytes ...).  These are what the
  paper's §3.3 reasons about analytically and they are reported verbatim in
  the benchmark output.
* **resource busy time** — microseconds of busy time attributed to named
  resources (``osd.device``, ``osd.cpu``, ``client.net`` ...), from which
  the performance model derives throughput.

Per-IO critical-path latency is returned separately via :class:`OpReceipt`
objects so the workload runner can apply a queue-depth (Little's law)
bound.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator


# Resource names used across the stack.
RES_CLIENT_NET = "client.net"
RES_CLIENT_CPU = "client.cpu"
RES_CLUSTER_NET = "cluster.net"
RES_OSD_DEVICE = "osd.device"
RES_OSD_CPU = "osd.cpu"

ALL_RESOURCES = (RES_CLIENT_NET, RES_CLIENT_CPU, RES_CLUSTER_NET,
                 RES_OSD_DEVICE, RES_OSD_CPU)


@dataclass
class OpReceipt:
    """Critical-path latency and byte count of one client-visible operation."""

    latency_us: float = 0.0
    bytes_moved: int = 0

    def extend(self, other: "OpReceipt") -> None:
        """Serial composition: the other op happens after this one."""
        self.latency_us += other.latency_us
        self.bytes_moved += other.bytes_moved

    def merge_parallel(self, other: "OpReceipt") -> None:
        """Parallel composition: both ops overlap; latency is the max."""
        self.latency_us = max(self.latency_us, other.latency_us)
        self.bytes_moved += other.bytes_moved


class CostLedger:
    """Accumulates counters and per-resource busy time."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)
        self.resource_us: Dict[str, float] = defaultdict(float)
        self.latency_sum_us: float = 0.0
        self.op_count: int = 0

    # -- recording ------------------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a named counter."""
        self.counters[name] += amount

    def busy(self, resource: str, microseconds: float) -> None:
        """Attribute busy time to a resource."""
        if microseconds < 0:
            raise ValueError("busy time must be non-negative")
        self.resource_us[resource] += microseconds

    def finish_op(self, receipt: OpReceipt, ops: int = 1) -> None:
        """Record the completion of ``ops`` client-visible operations.

        The batched I/O engine completes a whole window of requests with a
        single receipt; passing ``ops`` > 1 attributes the window's
        critical-path latency to the batch once while still counting every
        request toward IOPS, so batched and per-request runs stay
        comparable.
        """
        if ops <= 0:
            raise ValueError("ops must be positive")
        self.latency_sum_us += receipt.latency_us
        self.op_count += ops

    def record_batch(self, requests: int, blocks: int) -> None:
        """Record one flushed engine batch of ``requests`` covering ``blocks``.

        Maintains the ``engine.batches`` / ``engine.batched_requests`` /
        ``engine.batched_blocks`` counters from which
        :meth:`mean_batch_blocks` derives the achieved amortization.
        """
        self.count("engine.batches")
        self.count("engine.batched_requests", requests)
        self.count("engine.batched_blocks", blocks)

    def mean_batch_blocks(self) -> float:
        """Average blocks per flushed engine batch (0 if none recorded)."""
        batches = self.counter("engine.batches")
        if not batches:
            return 0.0
        return self.counter("engine.batched_blocks") / batches

    # -- inspection -------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Return a counter (0 if never incremented)."""
        return self.counters.get(name, 0.0)

    def resource(self, name: str) -> float:
        """Return accumulated busy microseconds for a resource."""
        return self.resource_us.get(name, 0.0)

    def mean_latency_us(self) -> float:
        """Average critical-path latency over all finished operations."""
        if self.op_count == 0:
            return 0.0
        return self.latency_sum_us / self.op_count

    def snapshot(self) -> "CostLedger":
        """Deep copy of the current state (used to diff before/after a run)."""
        clone = CostLedger()
        clone.counters = defaultdict(float, self.counters)
        clone.resource_us = defaultdict(float, self.resource_us)
        clone.latency_sum_us = self.latency_sum_us
        clone.op_count = self.op_count
        return clone

    def diff(self, since: "CostLedger") -> "CostLedger":
        """Return a ledger holding the activity since ``since`` was captured."""
        delta = CostLedger()
        keys = set(self.counters) | set(since.counters)
        for key in keys:
            delta.counters[key] = self.counters.get(key, 0.0) - since.counters.get(key, 0.0)
        keys = set(self.resource_us) | set(since.resource_us)
        for key in keys:
            delta.resource_us[key] = (self.resource_us.get(key, 0.0)
                                      - since.resource_us.get(key, 0.0))
        delta.latency_sum_us = self.latency_sum_us - since.latency_sum_us
        delta.op_count = self.op_count - since.op_count
        return delta

    def items(self) -> Iterator:
        """Iterate over (counter name, value) pairs, sorted by name."""
        return iter(sorted(self.counters.items()))

    def reset(self) -> None:
        """Clear all recorded activity."""
        self.counters.clear()
        self.resource_us.clear()
        self.latency_sum_us = 0.0
        self.op_count = 0
