"""Event-driven cluster scheduler: replays op traces through FIFO queues.

This is the "accurate path" of the performance model.  Where the analytic
estimate (:meth:`~repro.sim.perfmodel.PerformanceModel.estimate`) collapses
a run into two closed-form bounds, the scheduler replays the recorded
operation traces (:class:`~repro.sim.ledger.ClientOpTrace`) through an
explicit model of the testbed's shared resources:

* every OSD is a FIFO :class:`ServiceQueue` with ``osd_shards`` parallel
  servers — a transaction occupies one shard for its *service* time
  (CPU + device channel occupancy) and acknowledges after its
  critical-path latency,
* each client stream owns a dispatch-CPU queue and a NIC queue (one
  server each — one fio process on one link),
* the backend network is one shared queue through which every replication
  push passes,
* replication fans out as chained events: the client's dispatch event
  schedules an arrival at the primary and, per replica, a push through the
  backend network followed (one hop later) by an arrival at the replica's
  queue; the op acknowledges when the slowest replica has committed.

Each client keeps ``queue_depth`` operations in flight (closed loop, like
fio): a completion immediately issues the stream's next operation.  With
several streams the queues are *shared*, so contention — queue waiting,
rising tail latency, sub-linear aggregate bandwidth — emerges from the
replay rather than being postulated.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .costparams import CostParameters
from .events import EventLoop
from .ledger import ClientOpTrace, OpTrace, OsdVisit
from .reservoir import CLIENT_RESERVOIR_CAPACITY, LatencyReservoir
from ..errors import ConfigurationError
from ..obs.names import KIND_INDEX, OP_KINDS
from ..obs.spans import SpanTracer


class ServiceQueue:
    """A FIFO service station with ``servers`` parallel servers.

    Jobs must be submitted in arrival-time order — the event loop is what
    guarantees it in practice, but the queue *enforces* it (an
    out-of-order submission would silently compute a negative wait and
    corrupt the FIFO start times, so it raises instead).  Each job takes
    the earliest-free server, so waiting time is ``start - arrival`` and
    the queue is work-conserving.
    """

    def __init__(self, name: str, servers: int = 1) -> None:
        if servers <= 0:
            raise ConfigurationError("a service queue needs >= 1 server")
        self.name = name
        self.servers = servers
        self._free_at: List[float] = [0.0] * servers
        heapq.heapify(self._free_at)
        self._last_arrival_us = float("-inf")
        self.busy_us = 0.0
        self.jobs = 0
        self.wait_us = 0.0

    def submit(self, now: float, service_us: float) -> "QueuedJob":
        """Serve a job arriving at ``now``; returns its start/end times."""
        if service_us < 0:
            raise ConfigurationError("service time must be non-negative")
        if now < self._last_arrival_us:
            raise ConfigurationError(
                f"queue {self.name}: job arriving at {now:.3f} us is earlier "
                f"than the previous arrival at {self._last_arrival_us:.3f} us; "
                f"FIFO queues need non-decreasing arrival times")
        self._last_arrival_us = now
        free_at = heapq.heappop(self._free_at)
        start = max(now, free_at)
        end = start + service_us
        heapq.heappush(self._free_at, end)
        self.busy_us += service_us
        self.jobs += 1
        self.wait_us += start - now
        return QueuedJob(start_us=start, end_us=end)

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of server time kept busy over ``elapsed_us``."""
        if elapsed_us <= 0:
            return 0.0
        return self.busy_us / (self.servers * elapsed_us)


@dataclass(frozen=True)
class QueuedJob:
    """Start and end of one job's stay on a queue's server."""

    start_us: float
    end_us: float


@dataclass
class EventSimResult:
    """Everything the event replay measured.

    Latency populations are carried as :class:`LatencyReservoir` objects
    (exact count/mean/max, reservoir-sampled percentiles) so memory stays
    O(1) in the operation count; the ``*_latencies_us`` list views remain
    for compatibility and return the retained sample — the full
    population, in completion order, for runs below the reservoir
    capacity.
    """

    elapsed_us: float
    requests: int
    op_stats: LatencyReservoir = field(default_factory=LatencyReservoir)
    request_stats: LatencyReservoir = field(default_factory=LatencyReservoir)
    #: per-client request-latency reservoirs, indexed by stream
    client_request_stats: List[LatencyReservoir] = field(default_factory=list)
    resource_us: Dict[str, float] = field(default_factory=dict)
    bounding_resource: str = "latency(qd)"
    events_processed: int = 0
    queue_wait_us: Dict[str, float] = field(default_factory=dict)
    #: which implementation produced the result ("legacy", "compact" or
    #: "vectorized"), recorded so equivalence tests can assert the path
    engine: str = "legacy"

    @property
    def op_latencies_us(self) -> List[float]:
        """Sampled client-visible op latencies (full list on small runs)."""
        return self.op_stats.sample

    @property
    def request_latencies_us(self) -> List[float]:
        """Sampled per-request completion latencies."""
        return self.request_stats.sample

    @property
    def client_request_latencies_us(self) -> List[List[float]]:
        """Sampled per-request latencies split by client stream index."""
        return [stats.sample for stats in self.client_request_stats]


class _ClientState:
    """One closed-loop request stream and its private client-side queues."""

    def __init__(self, index: int, stream: Sequence[ClientOpTrace]) -> None:
        self.index = index
        self.stream = list(stream)
        self.next_op = 0
        self.cpu = ServiceQueue(f"client.{index}.cpu")
        self.net = ServiceQueue(f"client.{index}.net")
        self.request_stats = LatencyReservoir(
            capacity=CLIENT_RESERVOIR_CAPACITY)


class ClusterScheduler:
    """Replays per-client op-trace streams against one shared cluster."""

    def __init__(self, params: CostParameters,
                 tracer: Optional[SpanTracer] = None) -> None:
        self._params = params
        #: span sink, or None; emission sites match the compact replay's
        #: (same sim-clock instants), pinned by the golden span tests
        self._tracer = tracer
        self.loop = EventLoop()
        self.osd_queues: Dict[int, ServiceQueue] = {}
        self.cluster_net = ServiceQueue("cluster.net")
        self._clients: List[_ClientState] = []
        self._op_stats = LatencyReservoir()
        self._request_stats = LatencyReservoir()
        self._requests_done = 0

    def _osd_queue(self, osd_id: int) -> ServiceQueue:
        queue = self.osd_queues.get(osd_id)
        if queue is None:
            queue = ServiceQueue(f"osd.{osd_id}",
                                 servers=max(1, self._params.osd_shards))
            self.osd_queues[osd_id] = queue
        return queue

    # -- op lifecycle ----------------------------------------------------------

    def _visit_osd(self, visit: OsdVisit, arrival_us: float,
                   done: Callable[[float], None], kind: str) -> None:
        """Schedule one OSD visit; ``done`` fires at the OSD's local ack."""
        def arrive() -> None:
            job = self._osd_queue(visit.osd_id).submit(self.loop.now,
                                                       visit.service_us)
            # The shard frees after the occupancy, but the acknowledgement
            # waits for the critical path (device latencies included).
            ack = job.start_us + max(visit.service_us, visit.latency_us)
            if self._tracer is not None:
                self._tracer.osd_visit(visit.osd_id, job.start_us, ack, kind)
            self.loop.schedule_at(ack, lambda: done(ack))
        self.loop.schedule_at(arrival_us, arrive)

    def _run_rados_op(self, client: _ClientState, trace: OpTrace,
                      done: Callable[[], None]) -> None:
        """Run one RADOS op starting now; ``done`` fires at its ack."""
        now = self.loop.now
        dispatch = client.cpu.submit(now, trace.client_cpu_us)
        transfer = client.net.submit(dispatch.end_us, trace.client_net_us)
        if self._tracer is not None:
            self._tracer.client_dispatch(client.index, dispatch.start_us,
                                         trace.client_cpu_us)
            self._tracer.client_transfer(client.index, transfer.start_us,
                                         trace.client_net_us)
            inner_done = done

            def done() -> None:
                self._tracer.rados_op(client.index, trace.kind, now,
                                      self.loop.now,
                                      getattr(trace, "retries", 0))
                inner_done()
        half_rtt = trace.network_us / 2.0
        arrival = transfer.end_us + half_rtt

        pending = len(trace.visits)
        if pending == 0:
            self.loop.schedule_at(arrival + half_rtt, done)
            return
        acks: List[float] = []

        def osd_done(ack_us: float) -> None:
            acks.append(ack_us)
            if len(acks) == pending:
                self.loop.schedule_at(max(acks) + half_rtt, done)

        self._visit_osd(trace.primary, arrival, osd_done, trace.kind)
        for replica in trace.replicas:
            # The primary forwards the payload as soon as the request
            # arrives: one push through the shared backend network, one
            # hop of latency, then the replica's own queue.
            def push(replica: OsdVisit = replica) -> None:
                job = self.cluster_net.submit(self.loop.now, replica.push_us)
                if self._tracer is not None:
                    self._tracer.cluster_push(replica.osd_id, job.start_us,
                                              replica.push_us)
                self._visit_osd(replica, job.end_us + replica.hop_us,
                                osd_done, trace.kind)
            self.loop.schedule_at(arrival, push)

    def _run_client_op(self, client: _ClientState, cop: ClientOpTrace,
                       issued_us: float) -> None:
        """Run a client-visible op (a serial chain of RADOS ops)."""
        traces = cop.traces

        def finish() -> None:
            if self._tracer is not None:
                kind = traces[0].kind if traces else "noop"
                self._tracer.client_op(client.index, kind, issued_us,
                                       self.loop.now, cop.requests)
            latency = self.loop.now - issued_us
            self._op_stats.record(latency)
            per_request = latency / cop.requests
            self._request_stats.record(per_request, weight=cop.requests)
            client.request_stats.record(per_request, weight=cop.requests)
            self._requests_done += cop.requests
            self._issue_next(client)

        def run_chain(i: int) -> None:
            if i < len(traces):
                self._run_rados_op(client, traces[i],
                                   lambda: run_chain(i + 1))
            else:
                finish()

        if not traces:
            # A zero-cost op (e.g. a sparse read that never reached an
            # OSD) completes instantly; route it through the loop so a
            # long run of such ops does not recurse through _issue_next.
            self.loop.schedule_after(0.0, finish)
        else:
            run_chain(0)

    def _issue_next(self, client: _ClientState) -> None:
        if client.next_op >= len(client.stream):
            return
        cop = client.stream[client.next_op]
        client.next_op += 1
        self._run_client_op(client, cop, self.loop.now)

    # -- entry point -----------------------------------------------------------

    def run(self, streams: Sequence[Sequence[ClientOpTrace]],
            queue_depth: int) -> EventSimResult:
        """Replay ``streams`` (one per client) at the given queue depth.

        A scheduler replays exactly one run (its queues and event loop
        accumulate state); build a fresh one per replay.
        """
        if self._clients:
            raise ConfigurationError(
                "ClusterScheduler.run is single-use; build a new scheduler "
                "for each replay")
        if queue_depth <= 0:
            raise ConfigurationError("queue depth must be positive")
        if not any(len(stream) for stream in streams):
            raise ConfigurationError(
                "event simulation needs at least one traced operation "
                "(was ledger.trace_ops enabled during the run?)")
        unknown = sorted({trace.kind for stream in streams for cop in stream
                          for trace in cop.traces
                          if trace.kind not in KIND_INDEX})
        if unknown:
            raise ConfigurationError(
                f"unknown OpTrace kind(s) {unknown}; declared kinds: "
                f"{list(OP_KINDS)} (repro.obs.names.OP_KINDS)")
        for index, stream in enumerate(streams):
            client = _ClientState(index, stream)
            self._clients.append(client)
            for _ in range(min(queue_depth, len(client.stream))):
                self.loop.schedule_at(0.0, lambda c=client: self._issue_next(c))
        elapsed = self.loop.run()
        return self._result(max(elapsed, 1e-6))

    def _result(self, elapsed_us: float) -> EventSimResult:
        resource_us: Dict[str, float] = {
            "client.cpu": max((c.cpu.busy_us for c in self._clients),
                              default=0.0),
            "client.net": max((c.net.busy_us for c in self._clients),
                              default=0.0),
            "cluster.net": self.cluster_net.busy_us,
            "osd.work": max(
                (q.busy_us / q.servers for q in self.osd_queues.values()),
                default=0.0),
        }
        waits = {q.name: q.wait_us
                 for q in list(self.osd_queues.values()) + [self.cluster_net]}
        bounding = max(resource_us, key=lambda k: resource_us[k])
        # If no single resource was near-saturated (its busy time below
        # params.saturation_threshold of the elapsed time — the same
        # labelling discipline the analytic estimate applies), the run
        # was paced by operation latency at the configured depth, like
        # the analytic latency bound.
        if resource_us[bounding] < (self._params.saturation_threshold
                                    * elapsed_us):
            bounding = "latency(qd)"
        return EventSimResult(
            elapsed_us=elapsed_us,
            requests=self._requests_done,
            op_stats=self._op_stats,
            request_stats=self._request_stats,
            client_request_stats=[c.request_stats for c in self._clients],
            resource_us=resource_us,
            bounding_resource=bounding,
            events_processed=self.loop.events_processed,
            queue_wait_us=waits,
            engine="legacy",
        )


def simulate_client_ops(params: CostParameters,
                        streams: Sequence[Sequence[ClientOpTrace]],
                        queue_depth: int,
                        tracer: Optional[SpanTracer] = None,
                        ) -> EventSimResult:
    """Replay ``streams`` closed-loop with the engine ``params`` selects.

    ``event_engine="compact"`` (the default) flattens the streams into
    numpy columns and drives the index-based event machine — same event
    discipline, same results, a fraction of the per-op cost — sharded
    across ``sim_shards`` contention domains when asked;
    ``event_engine="legacy"`` keeps the original per-op object scheduler
    for equivalence comparisons.  A scheduler replays exactly one run;
    this builds fresh state every call.
    """
    engine = getattr(params, "event_engine", "legacy")
    if engine == "legacy":
        return ClusterScheduler(params, tracer).run(streams, queue_depth)
    from .fleet import simulate_closed_loop
    return simulate_closed_loop(params, streams, queue_depth, tracer=tracer)


def simulate_open_loop(params: CostParameters,
                       streams: Sequence[Sequence[ClientOpTrace]],
                       arrivals_us: Sequence[Sequence[float]],
                       tracer: Optional[SpanTracer] = None,
                       ) -> EventSimResult:
    """Replay ``streams`` open-loop: op ``j`` of client ``i`` is *issued*
    at ``arrivals_us[i][j]`` regardless of completions (an arrival
    process, not a closed queue-depth loop), so overload shows up as
    unbounded queueing rather than throttled issue."""
    from .fleet import simulate_fleet
    return simulate_fleet(params, streams, arrivals_us=arrivals_us,
                          tracer=tracer)
