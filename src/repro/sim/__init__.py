"""Simulation support: cost parameters, the cost ledger and the performance
model that turns recorded resource usage into simulated elapsed time.

The paper's evaluation (Fig. 3 and Fig. 4) measures fio throughput against
a physical 3-node Ceph cluster.  This reproduction replaces the physical
testbed with a cost model: every simulated component (NVMe device, LSM
key-value store, network hop, OSD op processing) records the work it
performed into a :class:`~repro.sim.ledger.CostLedger`, and
:class:`~repro.sim.perfmodel.PerformanceModel` converts that work into an
estimated elapsed time using bottleneck analysis plus a queue-depth latency
bound.  See DESIGN.md §2 for why this substitution preserves the paper's
comparisons.

Contracts every consumer may rely on:

* **Determinism** — both performance models are pure functions of the
  recorded work: the analytic two-bound estimate reads only the ledger
  delta, and the event-driven replay (:mod:`repro.sim.scheduler`)
  processes the recorded :class:`~repro.sim.ledger.ClientOpTrace` streams
  through an explicitly ordered event loop with deterministic
  tie-breaking.  Same run, same seeds → bit-identical estimates; this is
  what makes the committed ``BENCH_*.json`` baselines gateable in CI.
* **Ledger completeness** — every simulated component charges *all* of
  its work (counters and resource busy time) before its call returns;
  snapshots/diffs of the ledger therefore bracket a run exactly.
* **Single-use schedulers** — a :class:`ClusterScheduler` replays exactly
  one run; its queues accumulate state, so build a fresh one per replay
  (:func:`simulate_client_ops` does).
* **Trace hygiene** — op traces are only recorded while
  ``ledger.trace_ops`` is on; unsealed traces must be either sealed by
  ``finish_op`` or dropped with ``discard_open_traces`` before the next
  run on the same cluster.
"""

from .clock import SimClock
from .compact import CompactStream, encode_stream, encode_streams, tile_stream
from .costparams import CostParameters, EVENT_ENGINES, SIM_MODES
from .events import EventLoop
from .fleet import (fleet_streams_from_template, simulate_closed_loop,
                    simulate_fleet)
from .ledger import ClientOpTrace, CostLedger, OpReceipt, OpTrace, OsdVisit
from .perfmodel import PerformanceModel, PerformanceEstimate
from .reservoir import LatencyReservoir, merge_reservoirs
from .scheduler import (ClusterScheduler, EventSimResult, ServiceQueue,
                        simulate_client_ops, simulate_open_loop)

__all__ = [
    "SimClock", "CostParameters", "SIM_MODES", "EVENT_ENGINES", "CostLedger",
    "OpReceipt", "OpTrace", "OsdVisit", "ClientOpTrace", "EventLoop",
    "ServiceQueue", "ClusterScheduler", "EventSimResult",
    "simulate_client_ops", "simulate_open_loop", "simulate_closed_loop",
    "simulate_fleet", "CompactStream", "encode_stream", "encode_streams",
    "tile_stream", "fleet_streams_from_template", "LatencyReservoir",
    "merge_reservoirs", "PerformanceModel", "PerformanceEstimate",
]
