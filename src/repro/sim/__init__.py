"""Simulation support: cost parameters, the cost ledger and the performance
model that turns recorded resource usage into simulated elapsed time.

The paper's evaluation (Fig. 3 and Fig. 4) measures fio throughput against
a physical 3-node Ceph cluster.  This reproduction replaces the physical
testbed with a cost model: every simulated component (NVMe device, LSM
key-value store, network hop, OSD op processing) records the work it
performed into a :class:`~repro.sim.ledger.CostLedger`, and
:class:`~repro.sim.perfmodel.PerformanceModel` converts that work into an
estimated elapsed time using bottleneck analysis plus a queue-depth latency
bound.  See DESIGN.md §2 for why this substitution preserves the paper's
comparisons.
"""

from .clock import SimClock
from .costparams import CostParameters, SIM_MODES
from .events import EventLoop
from .ledger import ClientOpTrace, CostLedger, OpReceipt, OpTrace, OsdVisit
from .perfmodel import PerformanceModel, PerformanceEstimate
from .scheduler import (ClusterScheduler, EventSimResult, ServiceQueue,
                        simulate_client_ops)

__all__ = [
    "SimClock", "CostParameters", "SIM_MODES", "CostLedger", "OpReceipt",
    "OpTrace", "OsdVisit", "ClientOpTrace", "EventLoop", "ServiceQueue",
    "ClusterScheduler", "EventSimResult", "simulate_client_ops",
    "PerformanceModel", "PerformanceEstimate",
]
