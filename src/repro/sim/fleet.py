"""Fleet-scale event simulation: sharded, vectorized trace replay.

This module is the compact engine's top half.  :mod:`~repro.sim.replay`
gives an exact index-based event machine; this module adds what fleet
runs (1,000 clients, millions of requests) need on top of it:

* **Vectorized open-loop replay** — when operations are issued by an
  exogenous arrival process (no completion->issue feedback) and every
  client op maps to at most one RADOS op, the whole replay collapses
  into sorted queue scans over numpy columns: a Lindley recursion per
  FIFO station (client CPU, client NIC, backend network, each OSD)
  instead of a per-event Python loop.  Multi-million-op runs finish in
  wall-clock seconds.
* **Sharding** — clients (and the queues they drive) are partitioned
  into ``params.sim_shards`` independent contention domains, replayed
  separately and merged deterministically; ``params.sim_jobs`` worker
  processes advance shards in parallel.  Results are bit-identical for
  any ``sim_jobs`` because the partition and the merge order depend
  only on ``sim_shards``.
* **Fleet synthesis** — :func:`fleet_streams_from_template` tiles one
  captured stream (real data path, real crypto and placement costs)
  out to an arbitrary client count with rotated OSD placement, without
  replaying the capture per client.

Closed-loop replay cannot be vectorized (each completion feeds the next
issue), so it always runs on the index machine — but still sharded.
The vectorized path falls back to the index machine whenever a stream
contains serial RADOS chains (read-modify-write turns) or OSD queues
have multiple servers (``osd_shards > 1``), where sorted-scan FIFO
semantics no longer hold.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .compact import CompactStream, encode_stream, encode_streams, tile_stream
from .costparams import CostParameters
from .ledger import ClientOpTrace
from .replay import has_serial_chains, replay_closed_loop, replay_open_loop
from .reservoir import (CLIENT_RESERVOIR_CAPACITY, LatencyReservoir,
                        merge_reservoirs)
from .scheduler import EventSimResult
from ..errors import ConfigurationError
from ..obs.spans import SpanTracer

__all__ = ["simulate_closed_loop", "simulate_fleet",
           "fleet_streams_from_template"]


# ---------------------------------------------------------------------------
# vectorized open-loop engine
# ---------------------------------------------------------------------------

def _fifo_scan(arrival: np.ndarray, service: np.ndarray,
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Start/end times of a single-server FIFO fed sorted arrivals.

    Lindley's recursion, vectorized: with inclusive service prefix sums
    ``S``, ``start[j] = S[j-1] + max_{k<=j}(arrival[k] - S[k-1])``, so
    one cumsum and one running max replace the per-job loop.
    """
    if arrival.size == 0:
        return arrival.copy(), arrival.copy()
    total = np.cumsum(service)
    before = total - service
    start = np.maximum.accumulate(arrival - before) + before
    return start, start + service


def _group_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]), [0..counts[1]), ...`` concatenated."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _empty_result(params: CostParameters, num_clients: int,
                  open_loop: bool) -> EventSimResult:
    return EventSimResult(
        elapsed_us=1e-6, requests=0,
        op_stats=LatencyReservoir(), request_stats=LatencyReservoir(),
        client_request_stats=[
            LatencyReservoir(capacity=CLIENT_RESERVOIR_CAPACITY)
            for _ in range(num_clients)],
        resource_us={"client.cpu": 0.0, "client.net": 0.0,
                     "cluster.net": 0.0, "osd.work": 0.0},
        bounding_resource="arrival(open-loop)" if open_loop else "latency(qd)",
        events_processed=0, queue_wait_us={},
        engine="vectorized" if open_loop else "compact")


def _vectorized_open_loop(params: CostParameters,
                          streams: Sequence[CompactStream],
                          arrivals_us: Sequence[np.ndarray],
                          ) -> EventSimResult:
    """Open-loop replay as sorted queue scans (see module docstring).

    Requires every op to carry at most one RADOS op and single-server
    OSD queues; callers guarantee both.  Exactly equivalent to
    :func:`~repro.sim.replay.replay_open_loop` on workloads with
    distinct event timestamps (ties break by deterministic issue order
    here and by event sequence numbers there).
    """
    num_clients = len(streams)
    ops_per_client = np.fromiter((s.num_ops for s in streams),
                                 dtype=np.int64, count=num_clients)
    base = np.zeros(num_clients + 1, dtype=np.int64)
    np.cumsum(ops_per_client, out=base[1:])
    n_ops = int(base[-1])
    if n_ops == 0:
        return _empty_result(params, num_clients, open_loop=True)

    g_T = np.concatenate([np.asarray(a, dtype=np.float64)
                          for a in arrivals_us if len(a)]) \
        if n_ops else np.zeros(0)
    g_requests = np.concatenate([s.op_requests for s in streams
                                 if s.num_ops])
    # Global issue order (T, client, op): the deterministic tie-break the
    # index machine realizes through event sequence numbers.
    g_client = np.repeat(np.arange(num_clients, dtype=np.int64),
                         ops_per_client)
    g_op = _group_arange(ops_per_client)
    order = np.lexsort((g_op, g_client, g_T))
    g_rank = np.empty(n_ops, dtype=np.int64)
    g_rank[order] = np.arange(n_ops, dtype=np.int64)

    g_done = np.empty(n_ops, dtype=np.float64)
    g_half = np.zeros(n_ops, dtype=np.float64)
    cpu_busy = np.zeros(num_clients)
    net_busy = np.zeros(num_clients)

    prim_parts: List[Tuple[np.ndarray, ...]] = []
    rep_parts: List[Tuple[np.ndarray, ...]] = []
    for c, stream in enumerate(streams):
        if stream.num_ops == 0:
            continue
        T = g_T[base[c]:base[c + 1]]
        g_ids = np.arange(base[c], base[c + 1], dtype=np.int64)
        tpo = np.diff(stream.op_trace_start)
        real = tpo > 0
        # Zero-cost ops (sparse reads) complete at issue time.
        g_done[g_ids[~real]] = T[~real]
        if not real.any():
            continue
        t_idx = stream.op_trace_start[:-1][real]
        cpu_svc = stream.trace_cpu_us[t_idx]
        net_svc = stream.trace_net_us[t_idx]
        _, cpu_end = _fifo_scan(T[real], cpu_svc)
        _, net_end = _fifo_scan(cpu_end, net_svc)
        cpu_busy[c] = float(cpu_svc.sum())
        net_busy[c] = float(net_svc.sum())
        half = stream.trace_rtt_us[t_idx] / 2.0
        prim_arr = net_end + half
        real_g = g_ids[real]
        g_half[real_g] = half
        vpt = np.diff(stream.trace_visit_start)[t_idx]
        no_visit = vpt == 0
        g_done[real_g[no_visit]] = prim_arr[no_visit] + half[no_visit]
        has = vpt > 0
        if not has.any():
            continue
        pv = stream.trace_visit_start[t_idx[has]]
        prim_parts.append((
            stream.visit_osd[pv], prim_arr[has],
            stream.visit_service_us[pv], stream.visit_latency_us[pv],
            real_g[has], g_rank[real_g[has]]))
        rep_counts = vpt[has] - 1
        if int(rep_counts.sum()) == 0:
            continue
        rep_idx = np.repeat(pv + 1, rep_counts) + _group_arange(rep_counts)
        rep_parts.append((
            stream.visit_osd[rep_idx],
            np.repeat(prim_arr[has], rep_counts),
            stream.visit_service_us[rep_idx],
            stream.visit_latency_us[rep_idx],
            np.repeat(real_g[has], rep_counts),
            np.repeat(g_rank[real_g[has]], rep_counts),
            _group_arange(rep_counts),
            stream.visit_push_us[rep_idx],
            stream.visit_hop_us[rep_idx]))

    # --- backend network: every replica push through one shared queue ---
    cluster_busy = 0.0
    cluster_wait = 0.0
    if rep_parts:
        r_osd, r_arr, r_svc, r_lat, r_gop, r_rank, r_vrank, r_push, r_hop = (
            np.concatenate([p[i] for p in rep_parts]) for i in range(9))
        net_order = np.lexsort((r_vrank, r_rank, r_arr))
        r_osd, r_arr, r_svc, r_lat, r_gop, r_rank, r_vrank, r_push, r_hop = (
            a[net_order] for a in (r_osd, r_arr, r_svc, r_lat, r_gop,
                                   r_rank, r_vrank, r_push, r_hop))
        push_start, push_end = _fifo_scan(r_arr, r_push)
        cluster_busy = float(r_push.sum())
        cluster_wait = float((push_start - r_arr).sum())
        r_arrival = push_end + r_hop
    else:
        r_osd = r_arrival = r_svc = r_lat = r_gop = r_rank = r_vrank = \
            np.zeros(0, dtype=np.float64)

    # --- OSD queues: primaries and replicas, one sorted scan per OSD ---
    if prim_parts:
        p_osd, p_arr, p_svc, p_lat, p_gop, p_rank = (
            np.concatenate([p[i] for p in prim_parts]) for i in range(6))
    else:
        p_osd = p_arr = p_svc = p_lat = p_gop = p_rank = np.zeros(0)
    v_osd = np.concatenate([p_osd, r_osd]).astype(np.int64)
    v_arr = np.concatenate([p_arr, r_arrival])
    v_svc = np.concatenate([p_svc, r_svc])
    v_lat = np.concatenate([p_lat, r_lat])
    v_gop = np.concatenate([p_gop, r_gop]).astype(np.int64)
    v_rank = np.concatenate([p_rank, r_rank]).astype(np.int64)
    # Within an op, the primary (visit rank 0) precedes replicas (1..).
    v_vrank = np.concatenate([np.zeros(p_osd.size, dtype=np.int64),
                              r_vrank.astype(np.int64) + 1])

    op_ack = np.full(n_ops, -np.inf)
    osd_busy: Dict[int, float] = {}
    osd_wait: Dict[int, float] = {}
    events = 0
    if v_osd.size:
        osd_order = np.lexsort((v_vrank, v_rank, v_arr, v_osd))
        s_osd = v_osd[osd_order]
        s_arr = v_arr[osd_order]
        s_svc = v_svc[osd_order]
        s_lat = v_lat[osd_order]
        s_gop = v_gop[osd_order]
        cuts = np.flatnonzero(np.diff(s_osd)) + 1
        bounds = np.concatenate(([0], cuts, [s_osd.size]))
        ack = np.empty(s_osd.size)
        for i in range(len(bounds) - 1):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            start, _end = _fifo_scan(s_arr[lo:hi], s_svc[lo:hi])
            ack[lo:hi] = start + np.maximum(s_svc[lo:hi], s_lat[lo:hi])
            osd_id = int(s_osd[lo])
            osd_busy[osd_id] = float(s_svc[lo:hi].sum())
            osd_wait[osd_id] = float((start - s_arr[lo:hi]).sum())
        np.maximum.at(op_ack, s_gop, ack)

    with_visits = op_ack > -np.inf
    g_done[with_visits] = op_ack[with_visits] + g_half[with_visits]

    # --- statistics (same event count the index machine would fire) ---
    op_visits = np.zeros(n_ops, dtype=np.int64)
    if v_gop.size:
        np.add.at(op_visits, v_gop, 1)
    events = int(np.where(op_visits > 0, 3 * op_visits + 1, 2).sum())

    latency = g_done - g_T
    op_stats = LatencyReservoir()
    op_stats.extend(latency)
    request_stats = LatencyReservoir()
    per_request = latency / g_requests
    request_stats.extend(per_request, weights=g_requests)
    client_stats = []
    for c in range(num_clients):
        stats = LatencyReservoir(capacity=CLIENT_RESERVOIR_CAPACITY)
        lo, hi = int(base[c]), int(base[c + 1])
        if hi > lo:
            stats.extend(per_request[lo:hi], weights=g_requests[lo:hi])
        client_stats.append(stats)

    elapsed = max(float(g_done.max()), 1e-6)
    resource_us = {
        "client.cpu": float(cpu_busy.max()) if num_clients else 0.0,
        "client.net": float(net_busy.max()) if num_clients else 0.0,
        "cluster.net": cluster_busy,
        "osd.work": max(osd_busy.values(), default=0.0),
    }
    waits = {f"osd.{osd_id}": wait for osd_id, wait in osd_wait.items()}
    waits["cluster.net"] = cluster_wait
    bounding = max(resource_us, key=lambda k: resource_us[k])
    if resource_us[bounding] < params.saturation_threshold * elapsed:
        bounding = "arrival(open-loop)"
    return EventSimResult(
        elapsed_us=elapsed, requests=int(g_requests.sum()),
        op_stats=op_stats, request_stats=request_stats,
        client_request_stats=client_stats, resource_us=resource_us,
        bounding_resource=bounding, events_processed=events,
        queue_wait_us=waits, engine="vectorized")


# ---------------------------------------------------------------------------
# sharding
# ---------------------------------------------------------------------------

def _partition(num_clients: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous balanced client ranges (deterministic, order-stable)."""
    shards = max(1, min(shards, num_clients))
    bounds = [round(i * num_clients / shards) for i in range(shards + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(shards)
            if bounds[i + 1] > bounds[i]]


def _replay_shard(payload: tuple) -> EventSimResult:
    """Advance one shard (module-level so worker processes can pickle it)."""
    params, streams, mode, queue_depth, arrivals = payload
    if mode == "closed":
        return replay_closed_loop(params, streams, queue_depth)
    if mode == "open-vectorized":
        return _vectorized_open_loop(params, streams, arrivals)
    return replay_open_loop(params, streams, arrivals)


def _run_shards(params: CostParameters,
                payloads: List[tuple]) -> List[EventSimResult]:
    jobs = max(1, min(params.sim_jobs, len(payloads)))
    if jobs == 1 or len(payloads) == 1:
        return [_replay_shard(p) for p in payloads]
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(_replay_shard, payloads))
    except (OSError, PermissionError):
        # Sandboxes without process spawning: same results, inline.
        return [_replay_shard(p) for p in payloads]


def _merge_results(params: CostParameters, parts: List[EventSimResult],
                   open_loop: bool) -> EventSimResult:
    """Deterministic shard merge.

    Shards are independent contention domains, so busy times compare
    against the *same* wall clock: the merged ``resource_us`` keeps the
    most-loaded domain per resource (max), elapsed time is the slowest
    shard, counts add up, queue waits add per queue name (an OSD id
    appearing in several shards is a name collision across domains),
    and latency reservoirs merge quantile-stratified without RNG.
    """
    if len(parts) == 1:
        return parts[0]
    elapsed = max(p.elapsed_us for p in parts)
    resource_us: Dict[str, float] = {}
    for part in parts:
        for key, value in part.resource_us.items():
            resource_us[key] = max(resource_us.get(key, 0.0), value)
    waits: Dict[str, float] = {}
    for part in parts:
        for key, value in part.queue_wait_us.items():
            waits[key] = waits.get(key, 0.0) + value
    bounding = max(resource_us, key=lambda k: resource_us[k])
    if resource_us[bounding] < params.saturation_threshold * elapsed:
        bounding = "arrival(open-loop)" if open_loop else "latency(qd)"
    return EventSimResult(
        elapsed_us=elapsed,
        requests=sum(p.requests for p in parts),
        op_stats=merge_reservoirs([p.op_stats for p in parts]),
        request_stats=merge_reservoirs([p.request_stats for p in parts]),
        client_request_stats=[stats for p in parts
                              for stats in p.client_request_stats],
        resource_us=resource_us,
        bounding_resource=bounding,
        events_processed=sum(p.events_processed for p in parts),
        queue_wait_us=waits,
        engine=parts[0].engine)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def simulate_closed_loop(params: CostParameters,
                         streams: Sequence[Sequence[ClientOpTrace]],
                         queue_depth: int,
                         tracer: Optional[SpanTracer] = None,
                         ) -> EventSimResult:
    """Closed-loop compact replay, sharded per ``params.sim_shards``.

    With one shard (the default) this is bit-identical to the legacy
    scheduler — same event discipline over flattened columns.  A tracer
    forces one in-process shard: spans carry every event's sim-clock
    times, which cannot cross worker-process boundaries, and splitting
    contention domains would change the very timeline being recorded.
    """
    if queue_depth <= 0:
        raise ConfigurationError("queue depth must be positive")
    compact = encode_streams(streams)
    if not any(s.num_ops for s in compact):
        raise ConfigurationError(
            "event simulation needs at least one traced operation "
            "(was ledger.trace_ops enabled during the run?)")
    if tracer is not None:
        return replay_closed_loop(params, compact, queue_depth, tracer)
    payloads = [(params, compact[lo:hi], "closed", queue_depth, None)
                for lo, hi in _partition(len(compact), params.sim_shards)]
    return _merge_results(params, _run_shards(params, payloads),
                          open_loop=False)


def simulate_fleet(params: CostParameters,
                   streams: Sequence[Sequence[ClientOpTrace]],
                   arrivals_us: Sequence[Sequence[float]],
                   tracer: Optional[SpanTracer] = None) -> EventSimResult:
    """Open-loop fleet replay: op ``j`` of client ``i`` issues at
    ``arrivals_us[i][j]``.

    Uses the vectorized scan engine whenever the workload allows it
    (single-RADOS-op client ops, single-server OSD queues) and
    ``params.event_engine`` is "compact"; otherwise the index-based
    event machine replays each shard exactly.  A tracer forces one
    in-process exact (index-machine) shard — the vectorized scans never
    materialize per-event times, and spans cannot cross worker-process
    boundaries.
    """
    compact = encode_streams(streams)
    if len(arrivals_us) != len(compact):
        raise ConfigurationError(
            f"{len(arrivals_us)} arrival arrays for {len(compact)} clients")
    if not any(s.num_ops for s in compact):
        raise ConfigurationError(
            "event simulation needs at least one traced operation "
            "(was ledger.trace_ops enabled during the run?)")
    arrays: List[np.ndarray] = []
    for c, (stream, arrivals) in enumerate(zip(compact, arrivals_us)):
        arr = np.asarray(arrivals, dtype=np.float64)
        if arr.size != stream.num_ops:
            raise ConfigurationError(
                f"client {c}: {arr.size} arrival timestamps for "
                f"{stream.num_ops} operations")
        if arr.size and bool(np.any(np.diff(arr) < 0)):
            raise ConfigurationError(
                "arrival timestamps must be sorted per client")
        arrays.append(arr)
    if tracer is not None:
        return replay_open_loop(params, compact, arrays, tracer)
    vectorized = (params.event_engine == "compact"
                  and params.osd_shards == 1
                  and not has_serial_chains(compact))
    mode = "open-vectorized" if vectorized else "open"
    payloads = [(params, compact[lo:hi], mode, 0, arrays[lo:hi])
                for lo, hi in _partition(len(compact), params.sim_shards)]
    return _merge_results(params, _run_shards(params, payloads),
                          open_loop=True)


def fleet_streams_from_template(template, num_clients: int,
                                ops_per_client: int,
                                osd_count: Optional[int] = None,
                                ) -> List[CompactStream]:
    """Synthesize ``num_clients`` streams by tiling one captured stream.

    The template carries real recorded costs (crypto, placement,
    read-modify-write turns); tiling scales the *traffic* without
    replaying the capture per client.  With ``osd_count``, client ``i``'s
    OSD placement rotates by ``i`` modulo the cluster size, spreading the
    fleet across OSDs while keeping primaries and replicas distinct.
    All non-placement columns are shared between clients (zero copies).
    """
    if num_clients <= 0 or ops_per_client <= 0:
        raise ConfigurationError(
            "fleet synthesis needs positive client and op counts")
    if not isinstance(template, CompactStream):
        template = encode_stream(template)
    base = tile_stream(template, ops_per_client)
    if osd_count is None or base.visit_osd.size == 0:
        return [base] * num_clients
    top = int(base.visit_osd.max())
    if osd_count <= top:
        raise ConfigurationError(
            f"osd_count={osd_count} cannot host template OSD ids up "
            f"to {top}")
    return [base if i % osd_count == 0 else
            dc_replace(base, visit_osd=(base.visit_osd + (i % osd_count))
                       % osd_count)
            for i in range(num_clients)]
