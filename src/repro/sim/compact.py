"""Compact trace representation: ClientOpTrace streams as numpy columns.

The per-op object form (:class:`~repro.sim.ledger.ClientOpTrace` holding
:class:`~repro.sim.ledger.OpTrace` objects holding
:class:`~repro.sim.ledger.OsdVisit` objects) costs several Python objects
and hundreds of bytes per simulated operation, which is what caps the
event engine well below fleet traffic.  :class:`CompactStream` flattens
one client's whole stream into flat numpy columns plus two prefix-offset
arrays (CSR-style), so the replay engines iterate over integer indices —
no objects, no closures, ~50 bytes per RADOS op regardless of Python's
object overhead — and the vectorized open-loop engine can run whole-column
queue scans directly on the buffers.

Layout (three levels, each a structure-of-arrays)::

    client ops : op_requests[i]                       i in [0, num_ops)
                 traces of op i = [op_trace_start[i], op_trace_start[i+1])
    RADOS ops  : trace_cpu_us / trace_net_us / trace_rtt_us /
                 trace_kind / trace_retries [t]
                 visits of trace t = [trace_visit_start[t],
                                      trace_visit_start[t+1])
    OSD visits : visit_osd / visit_service_us / visit_latency_us /
                 visit_hop_us / visit_push_us [v]
                 (visit 0 of a trace is the primary, the rest replicas)

:func:`encode_stream` is the bulk encoder from the ledger's sealed op
list; :meth:`CompactStream.op` decodes one op back for tests and
debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .ledger import ClientOpTrace, OpTrace, OsdVisit
from ..errors import ConfigurationError
from ..obs.names import KIND_INDEX, OP_KINDS


@dataclass
class CompactStream:
    """One client's op stream, flattened into columns (see module doc)."""

    op_requests: np.ndarray        #: int64[num_ops] requests per client op
    op_trace_start: np.ndarray     #: int64[num_ops + 1] prefix offsets
    trace_cpu_us: np.ndarray       #: float64[num_traces]
    trace_net_us: np.ndarray       #: float64[num_traces]
    trace_rtt_us: np.ndarray       #: float64[num_traces]
    trace_kind: np.ndarray         #: int64[num_traces] index into OP_KINDS
    trace_retries: np.ndarray      #: int64[num_traces] absorbed retries
    trace_visit_start: np.ndarray  #: int64[num_traces + 1] prefix offsets
    visit_osd: np.ndarray          #: int64[num_visits]
    visit_service_us: np.ndarray   #: float64[num_visits]
    visit_latency_us: np.ndarray   #: float64[num_visits]
    visit_hop_us: np.ndarray       #: float64[num_visits]
    visit_push_us: np.ndarray      #: float64[num_visits]

    @property
    def num_ops(self) -> int:
        """Client-visible operations in the stream."""
        return len(self.op_requests)

    @property
    def num_traces(self) -> int:
        """RADOS-level operations in the stream."""
        return len(self.trace_cpu_us)

    @property
    def num_visits(self) -> int:
        """OSD visits in the stream."""
        return len(self.visit_osd)

    @property
    def total_requests(self) -> int:
        """Client requests the stream completes (batch windows expanded)."""
        return int(self.op_requests.sum()) if self.num_ops else 0

    @property
    def max_traces_per_op(self) -> int:
        """Longest serial RADOS-op chain of any client op."""
        if not self.num_ops:
            return 0
        return int(np.diff(self.op_trace_start).max())

    def nbytes(self) -> int:
        """Total buffer memory of the columns (for memory assertions)."""
        return sum(getattr(self, name).nbytes for name in (
            "op_requests", "op_trace_start", "trace_cpu_us", "trace_net_us",
            "trace_rtt_us", "trace_kind", "trace_retries",
            "trace_visit_start", "visit_osd", "visit_service_us",
            "visit_latency_us", "visit_hop_us", "visit_push_us"))

    def op(self, index: int) -> ClientOpTrace:
        """Decode one client op back into the object form (tests only)."""
        traces: List[OpTrace] = []
        for t in range(int(self.op_trace_start[index]),
                       int(self.op_trace_start[index + 1])):
            visits = [OsdVisit(osd_id=int(self.visit_osd[v]),
                               service_us=float(self.visit_service_us[v]),
                               latency_us=float(self.visit_latency_us[v]),
                               hop_us=float(self.visit_hop_us[v]),
                               push_us=float(self.visit_push_us[v]))
                      for v in range(int(self.trace_visit_start[t]),
                                     int(self.trace_visit_start[t + 1]))]
            traces.append(OpTrace(
                kind=OP_KINDS[int(self.trace_kind[t])],
                client_cpu_us=float(self.trace_cpu_us[t]),
                client_net_us=float(self.trace_net_us[t]),
                network_us=float(self.trace_rtt_us[t]), visits=visits,
                retries=int(self.trace_retries[t])))
        return ClientOpTrace(requests=int(self.op_requests[index]),
                             traces=traces)


def encode_stream(ops: Sequence[ClientOpTrace]) -> CompactStream:
    """Bulk-encode one client's sealed op list into a :class:`CompactStream`.

    One pass over the objects; after this the replay never touches them
    again (callers typically drop the object list immediately, which is
    where the fleet-scale memory win comes from).
    """
    op_requests = np.fromiter((op.requests for op in ops), dtype=np.int64,
                              count=len(ops))
    op_trace_start = np.zeros(len(ops) + 1, dtype=np.int64)
    np.cumsum(np.fromiter((len(op.traces) for op in ops), dtype=np.int64,
                          count=len(ops)), out=op_trace_start[1:])
    traces = [trace for op in ops for trace in op.traces]
    trace_cpu = np.fromiter((t.client_cpu_us for t in traces),
                            dtype=np.float64, count=len(traces))
    trace_net = np.fromiter((t.client_net_us for t in traces),
                            dtype=np.float64, count=len(traces))
    trace_rtt = np.fromiter((t.network_us for t in traces),
                            dtype=np.float64, count=len(traces))
    try:
        trace_kind = np.fromiter((KIND_INDEX[t.kind] for t in traces),
                                 dtype=np.int64, count=len(traces))
    except KeyError:
        unknown = sorted({t.kind for t in traces if t.kind not in KIND_INDEX})
        raise ConfigurationError(
            f"unknown OpTrace kind(s) {unknown}; declared kinds: "
            f"{list(OP_KINDS)} (repro.obs.names.OP_KINDS)") from None
    trace_retries = np.fromiter((getattr(t, "retries", 0) for t in traces),
                                dtype=np.int64, count=len(traces))
    trace_visit_start = np.zeros(len(traces) + 1, dtype=np.int64)
    np.cumsum(np.fromiter((len(t.visits) for t in traces), dtype=np.int64,
                          count=len(traces)), out=trace_visit_start[1:])
    visits = [visit for t in traces for visit in t.visits]
    return CompactStream(
        op_requests=op_requests,
        op_trace_start=op_trace_start,
        trace_cpu_us=trace_cpu,
        trace_net_us=trace_net,
        trace_rtt_us=trace_rtt,
        trace_kind=trace_kind,
        trace_retries=trace_retries,
        trace_visit_start=trace_visit_start,
        visit_osd=np.fromiter((v.osd_id for v in visits), dtype=np.int64,
                              count=len(visits)),
        visit_service_us=np.fromiter((v.service_us for v in visits),
                                     dtype=np.float64, count=len(visits)),
        visit_latency_us=np.fromiter((v.latency_us for v in visits),
                                     dtype=np.float64, count=len(visits)),
        visit_hop_us=np.fromiter((v.hop_us for v in visits),
                                 dtype=np.float64, count=len(visits)),
        visit_push_us=np.fromiter((v.push_us for v in visits),
                                  dtype=np.float64, count=len(visits)),
    )


def encode_streams(streams: Sequence[Sequence[ClientOpTrace]],
                   ) -> List[CompactStream]:
    """Encode one stream per client (accepts already-encoded streams)."""
    return [stream if isinstance(stream, CompactStream)
            else encode_stream(stream) for stream in streams]


def tile_stream(stream: CompactStream, num_ops: int) -> CompactStream:
    """A stream of ``num_ops`` client ops built by cycling ``stream``.

    Used by the fleet synthesizer: a short captured trace (real data
    path, real crypto, real placement costs) is tiled out to the target
    op count without replaying the capture.  Offsets are rebuilt so the
    result is a self-contained stream.
    """
    if stream.num_ops == 0:
        raise ValueError("cannot tile an empty stream")
    repeats = -(-num_ops // stream.num_ops)  # ceil
    take_ops = num_ops

    def tile(column: np.ndarray) -> np.ndarray:
        return np.tile(column, repeats)

    op_requests = tile(stream.op_requests)[:take_ops]
    traces_per_op = np.diff(stream.op_trace_start)
    traces_per_op = tile(traces_per_op)[:take_ops]
    op_trace_start = np.zeros(take_ops + 1, dtype=np.int64)
    np.cumsum(traces_per_op, out=op_trace_start[1:])
    take_traces = int(op_trace_start[-1])
    visits_per_trace = np.diff(stream.trace_visit_start)
    visits_per_trace = tile(visits_per_trace)[:take_traces]
    trace_visit_start = np.zeros(take_traces + 1, dtype=np.int64)
    np.cumsum(visits_per_trace, out=trace_visit_start[1:])
    take_visits = int(trace_visit_start[-1])
    return CompactStream(
        op_requests=op_requests,
        op_trace_start=op_trace_start,
        trace_cpu_us=tile(stream.trace_cpu_us)[:take_traces],
        trace_net_us=tile(stream.trace_net_us)[:take_traces],
        trace_rtt_us=tile(stream.trace_rtt_us)[:take_traces],
        trace_kind=tile(stream.trace_kind)[:take_traces],
        trace_retries=tile(stream.trace_retries)[:take_traces],
        trace_visit_start=trace_visit_start,
        visit_osd=tile(stream.visit_osd)[:take_visits],
        visit_service_us=tile(stream.visit_service_us)[:take_visits],
        visit_latency_us=tile(stream.visit_latency_us)[:take_visits],
        visit_hop_us=tile(stream.visit_hop_us)[:take_visits],
        visit_push_us=tile(stream.visit_push_us)[:take_visits],
    )
