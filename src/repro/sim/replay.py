"""Index-based event machine: the compact engine's exact replay core.

This is a re-implementation of :class:`~repro.sim.scheduler.ClusterScheduler`
that walks :class:`~repro.sim.compact.CompactStream` columns instead of
``ClientOpTrace`` objects.  The hot loop allocates no closures and no
per-op objects: the heap holds plain ``(time, seq, code, a, b)`` tuples
whose integer payloads index straight into the numpy columns, and
in-flight replication state lives in one dict of small lists.

The event *discipline* deliberately mirrors the legacy scheduler call for
call — same scheduling order, same global sequence numbering, same
synchronous queue submissions inside callbacks — so for any closed-loop
replay the two engines produce bit-identical elapsed times, latencies and
queue accounting (pinned by ``tests/sim/test_compact_equivalence.py``).
On top of that it adds the open-loop mode: operations are *issued at
exogenous arrival timestamps* instead of being re-armed by completions,
which is what fleet-scale arrival processes (Poisson, trace-driven) need.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

from .compact import CompactStream
from .costparams import CostParameters
from .reservoir import CLIENT_RESERVOIR_CAPACITY, LatencyReservoir
from .scheduler import EventSimResult, ServiceQueue
from ..errors import ConfigurationError
from ..obs.names import OP_KINDS
from ..obs.spans import SpanTracer

# Event codes (payload meanings in parentheses).
_ISSUE = 0      # closed-loop: issue a client's next op       (client, -)
_ISSUE_AT = 1   # open-loop: issue one specific op            (client, op)
_ARRIVE = 2     # a visit arrives at its OSD queue            (visit, flight)
_PUSH = 3       # replication push enters the backend network (visit, flight)
_ACK = 4        # one OSD visit acknowledged                  (flight, -)
_CHAIN = 5      # continue an op's serial RADOS chain         (client, flight)


class _Replay:
    """One single-use replay of compact streams (closed- or open-loop)."""

    def __init__(self, params: CostParameters,
                 streams: Sequence[CompactStream],
                 tracer: Optional[SpanTracer] = None) -> None:
        self._params = params
        self._streams = list(streams)
        #: span sink, or None; every emission site is behind an
        #: ``is not None`` check so the untraced hot loop stays untouched
        self._tracer = tracer
        #: flight id -> submit time of its in-progress RADOS op
        self._rados_start: Dict[int, float] = {}
        self._cpu = [ServiceQueue(f"client.{i}.cpu")
                     for i in range(len(self._streams))]
        self._net = [ServiceQueue(f"client.{i}.net")
                     for i in range(len(self._streams))]
        self._client_stats = [
            LatencyReservoir(capacity=CLIENT_RESERVOIR_CAPACITY)
            for _ in self._streams]
        self.osd_queues: Dict[int, ServiceQueue] = {}
        self.cluster_net = ServiceQueue("cluster.net")
        self._heap: List[tuple] = []
        self._seq = 0
        self._now = 0.0
        self._events = 0
        self._op_stats = LatencyReservoir()
        self._request_stats = LatencyReservoir()
        self._requests_done = 0
        self._next_op = [0] * len(self._streams)
        # In-flight state, keyed by flight id:
        #   op flights:   [client, op_index, issued_us, next_trace]
        #   visit fan-out: shares the op flight and adds [remaining, max_ack]
        self._flights: Dict[int, list] = {}
        self._next_flight = 0
        self._closed_loop = True

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, time_us: float, code: int, a: int, b: int) -> None:
        heapq.heappush(self._heap, (time_us, self._seq, code, a, b))
        self._seq += 1

    def _osd_queue(self, osd_id: int) -> ServiceQueue:
        queue = self.osd_queues.get(osd_id)
        if queue is None:
            queue = ServiceQueue(f"osd.{osd_id}",
                                 servers=max(1, self._params.osd_shards))
            self.osd_queues[osd_id] = queue
        return queue

    # -- op lifecycle ----------------------------------------------------------

    def _start_op(self, client: int, op: int, now: float) -> None:
        stream = self._streams[client]
        fid = self._next_flight
        self._next_flight += 1
        next_trace = int(stream.op_trace_start[op])
        self._flights[fid] = [client, op, now, next_trace, 0, 0.0]
        end = int(stream.op_trace_start[op + 1])
        if next_trace == end:
            # Zero-cost op (sparse read): route through the heap so long
            # runs of such ops do not recurse, exactly like the legacy
            # scheduler's schedule_after(0, finish).
            self._schedule(now + 0.0, _CHAIN, client, fid)
        else:
            self._run_rados(fid, now)

    def _run_rados(self, fid: int, now: float) -> None:
        flight = self._flights[fid]
        client, t = flight[0], flight[3]
        stream = self._streams[client]
        dispatch = self._cpu[client].submit(now, float(stream.trace_cpu_us[t]))
        transfer = self._net[client].submit(dispatch.end_us,
                                            float(stream.trace_net_us[t]))
        if self._tracer is not None:
            self._tracer.client_dispatch(client, dispatch.start_us,
                                         float(stream.trace_cpu_us[t]))
            self._tracer.client_transfer(client, transfer.start_us,
                                         float(stream.trace_net_us[t]))
            self._rados_start[fid] = now
        half_rtt = float(stream.trace_rtt_us[t]) / 2.0
        arrival = transfer.end_us + half_rtt
        vs = int(stream.trace_visit_start[t])
        ve = int(stream.trace_visit_start[t + 1])
        flight[3] = t + 1
        if vs == ve:
            self._schedule(arrival + half_rtt, _CHAIN, client, fid)
            return
        flight[4] = ve - vs
        flight[5] = float("-inf")
        self._schedule(arrival, _ARRIVE, vs, fid)
        for v in range(vs + 1, ve):
            self._schedule(arrival, _PUSH, v, fid)

    def _finish(self, fid: int, now: float) -> None:
        flight = self._flights.pop(fid)
        client, op, issued = flight[0], flight[1], flight[2]
        stream = self._streams[client]
        if self._tracer is not None:
            t0 = int(stream.op_trace_start[op])
            kind = (OP_KINDS[int(stream.trace_kind[t0])]
                    if t0 < int(stream.op_trace_start[op + 1]) else "noop")
            self._tracer.client_op(client, kind, issued, now,
                                   int(stream.op_requests[op]))
        latency = now - issued
        self._op_stats.record(latency)
        requests = int(stream.op_requests[op])
        per_request = latency / requests
        self._request_stats.record(per_request, weight=requests)
        self._client_stats[client].record(per_request, weight=requests)
        self._requests_done += requests
        if self._closed_loop:
            self._issue_next(client, now)

    def _issue_next(self, client: int, now: float) -> None:
        stream = self._streams[client]
        if self._next_op[client] >= stream.num_ops:
            return
        op = self._next_op[client]
        self._next_op[client] += 1
        self._start_op(client, op, now)

    # -- main loop -------------------------------------------------------------

    def _drain(self) -> float:
        heap = self._heap
        streams = self._streams
        flights = self._flights
        while heap:
            now, _seq, code, a, b = heapq.heappop(heap)
            self._now = now
            self._events += 1
            if code == _ARRIVE:
                flight = flights[b]
                stream = streams[flight[0]]
                service = float(stream.visit_service_us[a])
                job = self._osd_queue(int(stream.visit_osd[a])).submit(
                    now, service)
                ack = job.start_us + max(service,
                                         float(stream.visit_latency_us[a]))
                if self._tracer is not None:
                    self._tracer.osd_visit(
                        int(stream.visit_osd[a]), job.start_us, ack,
                        OP_KINDS[int(stream.trace_kind[flight[3] - 1])])
                self._schedule(ack, _ACK, b, 0)
            elif code == _ACK:
                flight = flights[a]
                if now > flight[5]:
                    flight[5] = now
                flight[4] -= 1
                if flight[4] == 0:
                    stream = streams[flight[0]]
                    half_rtt = float(stream.trace_rtt_us[flight[3] - 1]) / 2.0
                    self._schedule(flight[5] + half_rtt, _CHAIN,
                                   flight[0], a)
            elif code == _PUSH:
                flight = flights[b]
                stream = streams[flight[0]]
                job = self.cluster_net.submit(
                    now, float(stream.visit_push_us[a]))
                if self._tracer is not None:
                    self._tracer.cluster_push(int(stream.visit_osd[a]),
                                              job.start_us,
                                              float(stream.visit_push_us[a]))
                self._schedule(job.end_us + float(stream.visit_hop_us[a]),
                               _ARRIVE, a, b)
            elif code == _CHAIN:
                flight = flights[b]
                stream = streams[flight[0]]
                if self._tracer is not None:
                    start = self._rados_start.pop(b, None)
                    if start is not None:
                        t = flight[3] - 1
                        self._tracer.rados_op(
                            flight[0], OP_KINDS[int(stream.trace_kind[t])],
                            start, now, int(stream.trace_retries[t]))
                if flight[3] < int(stream.op_trace_start[flight[1] + 1]):
                    self._run_rados(b, now)
                else:
                    self._finish(b, now)
            elif code == _ISSUE:
                self._issue_next(a, now)
            else:  # _ISSUE_AT
                self._start_op(a, b, now)
        return self._now

    # -- entry points ----------------------------------------------------------

    def run_closed(self, queue_depth: int) -> EventSimResult:
        if queue_depth <= 0:
            raise ConfigurationError("queue depth must be positive")
        self._closed_loop = True
        for client, stream in enumerate(self._streams):
            for _ in range(min(queue_depth, stream.num_ops)):
                self._schedule(0.0, _ISSUE, client, 0)
        return self._result(max(self._drain(), 1e-6))

    def run_open(self, arrivals_us: Sequence[Sequence[float]],
                 ) -> EventSimResult:
        self._closed_loop = False
        issues = []
        for client, stream in enumerate(self._streams):
            arrivals = arrivals_us[client]
            if len(arrivals) != stream.num_ops:
                raise ConfigurationError(
                    f"client {client}: {len(arrivals)} arrival timestamps "
                    f"for {stream.num_ops} operations")
            last = float("-inf")
            for op, when in enumerate(arrivals):
                when = float(when)
                if when < last:
                    raise ConfigurationError(
                        "arrival timestamps must be sorted per client")
                last = when
                issues.append((when, client, op))
        # Sequence numbers follow (time, client, op) order so ties at any
        # downstream queue break identically to the vectorized engine.
        issues.sort()
        for when, client, op in issues:
            self._schedule(when, _ISSUE_AT, client, op)
        return self._result(max(self._drain(), 1e-6), open_loop=True)

    def _result(self, elapsed_us: float,
                open_loop: bool = False) -> EventSimResult:
        resource_us: Dict[str, float] = {
            "client.cpu": max((q.busy_us for q in self._cpu), default=0.0),
            "client.net": max((q.busy_us for q in self._net), default=0.0),
            "cluster.net": self.cluster_net.busy_us,
            "osd.work": max(
                (q.busy_us / q.servers for q in self.osd_queues.values()),
                default=0.0),
        }
        waits = {q.name: q.wait_us
                 for q in list(self.osd_queues.values()) + [self.cluster_net]}
        bounding = max(resource_us, key=lambda k: resource_us[k])
        if resource_us[bounding] < (self._params.saturation_threshold
                                    * elapsed_us):
            bounding = "arrival(open-loop)" if open_loop else "latency(qd)"
        return EventSimResult(
            elapsed_us=elapsed_us,
            requests=self._requests_done,
            op_stats=self._op_stats,
            request_stats=self._request_stats,
            client_request_stats=self._client_stats,
            resource_us=resource_us,
            bounding_resource=bounding,
            events_processed=self._events,
            queue_wait_us=waits,
            engine="compact",
        )


def replay_closed_loop(params: CostParameters,
                       streams: Sequence[CompactStream],
                       queue_depth: int,
                       tracer: Optional[SpanTracer] = None) -> EventSimResult:
    """Closed-loop compact replay (one fresh machine per call)."""
    return _Replay(params, streams, tracer).run_closed(queue_depth)


def replay_open_loop(params: CostParameters,
                     streams: Sequence[CompactStream],
                     arrivals_us: Sequence[Sequence[float]],
                     tracer: Optional[SpanTracer] = None) -> EventSimResult:
    """Open-loop compact replay: ops issue at the given timestamps."""
    return _Replay(params, streams, tracer).run_open(arrivals_us)


def has_serial_chains(streams: Sequence[CompactStream]) -> bool:
    """True if any op decomposes into more than one RADOS op (RMW)."""
    return any(stream.max_traces_per_op > 1 for stream in streams)


def total_ops(streams: Sequence[CompactStream]) -> int:
    """Client-visible op count across streams."""
    return sum(stream.num_ops for stream in streams)


def total_requests(streams: Sequence[CompactStream]) -> int:
    """Client request count across streams (batch windows expanded)."""
    return sum(stream.total_requests for stream in streams)


__all__ = ["replay_closed_loop", "replay_open_loop", "has_serial_chains",
           "total_ops", "total_requests"]
