"""A tiny logical clock used where components need ordered timestamps
(write-ahead log records, snapshot ids, transaction ids).

The clock is logical, not wall-clock: simulated elapsed time is computed by
:mod:`repro.sim.perfmodel`, never by reading this clock.
"""

from __future__ import annotations


class SimClock:
    """Monotonically increasing logical clock."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock must start at a non-negative value")
        self._now = start

    @property
    def now(self) -> int:
        """Current logical time (does not advance on read)."""
        return self._now

    def tick(self, amount: int = 1) -> int:
        """Advance the clock and return the new value."""
        if amount <= 0:
            raise ValueError("tick amount must be positive")
        self._now += amount
        return self._now

    def next(self) -> int:
        """Advance by one and return the new value (unique id generator)."""
        return self.tick(1)
