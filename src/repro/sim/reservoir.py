"""O(1)-memory latency statistics: reservoir-sampled percentiles.

The event replay used to keep one Python float per simulated request in
``op_latencies_us`` / ``request_latencies_us``; at fleet scale (1,000
clients, millions of requests) those lists dominate memory and garbage-
collection time.  :class:`LatencyReservoir` replaces them: exact count,
mean, min and max over *every* recorded value, plus a fixed-capacity
uniform sample (Vitter's Algorithm R) from which percentiles are read.

Two properties the rest of the stack relies on:

* **Exactness below capacity** — a run recording no more values than the
  reservoir's capacity keeps all of them in insertion order, so small
  runs report bit-identical percentiles to the old list-based path (this
  is what keeps the committed ``BENCH_*.json`` baselines stable).
* **Determinism** — the acceptance RNG is seeded per reservoir, and the
  bulk numpy path consumes the same generator, so identical runs produce
  identical samples regardless of wall clock, platform or process count.
  Shard merges are quantile-stratified (no RNG at all).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from ..util import percentile

#: default sample capacity of the run-wide reservoirs; large enough that
#: every pre-fleet benchmark keeps its full latency sample (exact
#: percentiles), small enough that a million-op replay stays at a few
#: hundred KiB of samples.
DEFAULT_RESERVOIR_CAPACITY = 8192

#: default capacity of the per-client reservoirs (a 1,000-client run
#: keeps 1,000 of these alive at once).
CLIENT_RESERVOIR_CAPACITY = 1024


class LatencyReservoir:
    """Fixed-memory summary of a latency population.

    ``record`` keeps exact count/sum/min/max and maintains a uniform
    sample of at most ``capacity`` values; ``percentile`` reads
    nearest-rank percentiles from the sample (exact while the population
    fits in it).
    """

    __slots__ = ("capacity", "count", "sum_us", "max_us", "min_us",
                 "_sample", "_rng", "_seed")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY,
                 seed: int = 0x5EED) -> None:
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self.count = 0
        self.sum_us = 0.0
        self.max_us = 0.0
        self.min_us = float("inf")
        self._sample: List[float] = []
        self._seed = seed
        self._rng = random.Random(seed)

    # -- recording -------------------------------------------------------------

    def record(self, value_us: float, weight: int = 1) -> None:
        """Record ``weight`` occurrences of one latency value.

        ``weight`` covers the batched-engine case where one window
        completes ``requests`` identical per-request latencies: the old
        code materialized ``[latency] * requests``; here only the
        aggregate moments grow and the sample sees at most ``weight``
        acceptance draws (bounded by the queue depth in practice).
        """
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.sum_us += value_us * weight
        if value_us > self.max_us:
            self.max_us = value_us
        if value_us < self.min_us:
            self.min_us = value_us
        for _ in range(weight):
            self.count += 1
            if len(self._sample) < self.capacity:
                self._sample.append(value_us)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.capacity:
                    self._sample[slot] = value_us

    def extend(self, values_us, weights=None) -> None:
        """Bulk-record an array of latencies (numpy fast path).

        The vectorized replay produces whole latency columns at once;
        feeding them through :meth:`record` one by one would cost a
        Python-level loop per simulated request.  This path fills the
        sample, then draws every acceptance decision with one vectorized
        RNG call.  Determinism holds (the RNG is the reservoir's own,
        consumed in a fixed order) although the accepted subset differs
        from what element-wise :meth:`record` calls would pick — both are
        uniform samples.

        ``weights`` marks each value as ``weights[i]`` identical
        occurrences (batch windows completing several requests at once).
        Exact moments honour the weights exactly; past capacity the
        sample acceptance uses the first-order Algorithm R probability
        ``capacity * weight / population`` per value, which converges to
        the exact scheme for populations well past capacity.
        """
        import numpy as np

        values = np.asarray(values_us, dtype=np.float64).ravel()
        if values.size == 0:
            return
        if weights is None:
            self.sum_us += float(values.sum())
            counts_end = None
            added = int(values.size)
        else:
            weights = np.asarray(weights, dtype=np.int64).ravel()
            if weights.shape != values.shape:
                raise ValueError("weights must match values in shape")
            if weights.size and int(weights.min()) <= 0:
                raise ValueError("weights must be positive")
            self.sum_us += float(np.dot(values, weights))
            counts_end = np.cumsum(weights)
            added = int(counts_end[-1])
        self.max_us = max(self.max_us, float(values.max()))
        self.min_us = min(self.min_us, float(values.min()))
        start = self.count
        self.count += added
        room = self.capacity - len(self._sample)
        fill = 0
        if room > 0:
            if weights is None:
                fill = min(room, values.size)
                self._sample.extend(values[:fill].tolist())
            else:
                fill = int(np.searchsorted(counts_end, room, side="left")) + 1
                fill = min(fill, values.size)
                expanded = np.repeat(values[:fill], weights[:fill])[:room]
                self._sample.extend(expanded.tolist())
        rest = values[fill:]
        if rest.size == 0:
            return
        # Item with 0-based global index n replaces a random slot with
        # probability capacity / (n + 1) — Algorithm R, vectorized.
        rng = np.random.default_rng(self._rng.randrange(2 ** 63))
        if weights is None:
            population = np.arange(start + fill + 1, self.count + 1)
            accept_p = self.capacity / population
        else:
            accept_p = np.minimum(
                1.0, self.capacity * weights[fill:] /
                (start + counts_end[fill:]))
        accept = rng.random(rest.size) < accept_p
        accepted = rest[accept]
        if accepted.size:
            slots = rng.integers(0, self.capacity, size=accepted.size)
            for slot, value in zip(slots.tolist(), accepted.tolist()):
                self._sample[slot] = value

    # -- reading ---------------------------------------------------------------

    @property
    def sample(self) -> List[float]:
        """The retained sample, in insertion order while below capacity."""
        return list(self._sample)

    @property
    def sampled(self) -> bool:
        """True when the population exceeded capacity (percentiles are
        estimates rather than exact)."""
        return self.count > self.capacity

    @property
    def mean_us(self) -> float:
        """Exact mean over the full population (not just the sample)."""
        if not self.count:
            return 0.0
        return self.sum_us / self.count

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile read from the sample."""
        return percentile(self._sample, pct)

    def percentiles(self, pcts: Sequence[float] = (50.0, 95.0, 99.0)
                    ) -> Dict[str, float]:
        """p50/p95/p99-style summary keyed like the performance model."""
        ordered = sorted(self._sample)
        return {f"p{pct:g}": percentile(ordered, pct) for pct in pcts}

    def summary(self) -> Dict[str, float]:
        """Exact moments plus sampled percentiles in one dict."""
        out = {"count": float(self.count), "mean": self.mean_us,
               "max": self.max_us,
               "min": self.min_us if self.count else 0.0}
        out.update(self.percentiles())
        return out

    # -- merging ---------------------------------------------------------------

    def merge(self, others: Iterable["LatencyReservoir"],
              ) -> "LatencyReservoir":
        """Deterministically merge shard reservoirs into a new one.

        Exact moments add up; the merged sample is built without any RNG:
        if everything fits it is the concatenation (still exact),
        otherwise each shard contributes a quantile-stratified draw (its
        sorted sample read at evenly spaced ranks) proportional to its
        population, which preserves percentile fidelity and is identical
        for every merge of the same shard results in the same order.
        """
        parts = [self] + list(others)
        merged = LatencyReservoir(capacity=self.capacity, seed=self._seed)
        merged.count = sum(p.count for p in parts)
        merged.sum_us = sum(p.sum_us for p in parts)
        merged.max_us = max((p.max_us for p in parts if p.count), default=0.0)
        merged.min_us = min((p.min_us for p in parts if p.count),
                            default=float("inf"))
        total_kept = sum(len(p._sample) for p in parts)
        if total_kept <= merged.capacity:
            for part in parts:
                merged._sample.extend(part._sample)
            return merged
        total = sum(p.count for p in parts)
        for part in parts:
            if not part._sample:
                continue
            want = max(1, round(merged.capacity * part.count / total))
            want = min(want, len(part._sample))
            ordered = sorted(part._sample)
            if want == len(ordered):
                merged._sample.extend(ordered)
                continue
            step = len(ordered) / want
            merged._sample.extend(ordered[int((i + 0.5) * step)]
                                  for i in range(want))
        del merged._sample[merged.capacity:]
        return merged


def merge_reservoirs(parts: Sequence[LatencyReservoir],
                     capacity: Optional[int] = None) -> LatencyReservoir:
    """Merge a list of reservoirs (empty list -> empty reservoir)."""
    if not parts:
        return LatencyReservoir(capacity=capacity or
                                DEFAULT_RESERVOIR_CAPACITY)
    head = parts[0]
    return head.merge(parts[1:])
