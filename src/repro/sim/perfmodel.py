"""Performance model: recorded work -> simulated elapsed time.

The model has two paths, selected by :attr:`CostParameters.sim_mode`
(``--sim-mode`` on the CLI):

**Analytic (fast path, the default).**  A closed-form two-bound estimate,
deliberately simple and transparent (it is documented in EXPERIMENTS.md
next to every figure it produces):

* **Resource bound** — each resource (client NIC, client CPU, backend
  network, aggregate OSD devices, aggregate OSD CPUs) has a total busy time
  recorded in the ledger; resources operate in parallel, so the run cannot
  finish before the most-loaded resource does.  Per-OSD resources are
  divided by the number of OSDs (uniform pseudo-random placement) and by
  the per-OSD parallelism (an OSD node drives several NVMe drives).
* **Latency bound** — with a fixed queue depth ``QD`` there are never more
  than ``QD`` operations in flight, so the run takes at least
  ``sum(latency of each op) / QD`` (Little's law).

Simulated elapsed time is the maximum of the two bounds; throughput is
bytes moved divided by that time.

**Event-driven (accurate path).**  :meth:`PerformanceModel.estimate_events`
replays the run's recorded operation traces through the discrete-event
engine (:mod:`repro.sim.events` / :mod:`repro.sim.scheduler`): per-OSD FIFO
queues with ``osd_shards`` servers, per-client dispatch/NIC queues, a
shared backend network, and replication fan-out as chained events.  Queue
*waiting* — which the analytic bounds cannot express — emerges from the
replay, which is what makes multiple contending clients, latency
percentiles and tail behaviour meaningful.  For a single client the two
paths agree closely (the contention the event engine adds is exactly what
one closed-loop stream cannot generate); the regression suite holds them
within 15% on the paper's Fig. 3 workloads.

**Batched runs.**  The I/O engine (:mod:`repro.engine`) converts queue
depth into batching: a window of up to ``QD`` requests completes as *one*
client-visible operation whose receipt already reflects the whole batch.
The runner therefore finishes each window with
``ledger.finish_op(receipt, ops=window_size)`` and estimates with
``queue_depth=1`` (windows are issued serially); the benefit of depth shows
up as fewer, larger transactions — the fixed per-transaction cost
(``osd_op_cost_us``, one round trip, one replication push per replica) is
paid once per batch and only the per-block costs (device transfer, crypto,
per-op CPU) scale with the window.  :func:`batch_report` summarizes how
much amortization a run actually achieved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from .costparams import CostParameters
from .ledger import (ClientOpTrace, CostLedger, RES_CLIENT_CPU,
                     RES_CLIENT_NET, RES_CLUSTER_NET, RES_OSD_CPU,
                     RES_OSD_DEVICE)
from .scheduler import simulate_client_ops
from ..errors import ConfigurationError
from ..util import percentile

#: percentiles reported alongside every estimate (keys of
#: :attr:`PerformanceEstimate.latency_percentiles`).
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


def latency_percentiles(latencies_us: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 summary of a per-request latency sample."""
    return {f"p{pct:g}": percentile(latencies_us, pct)
            for pct in LATENCY_PERCENTILES}


@dataclass(frozen=True)
class PerformanceEstimate:
    """Outcome of converting recorded work into time/throughput numbers."""

    elapsed_us: float
    total_bytes: int
    bandwidth_mbps: float
    iops: float
    mean_latency_us: float
    bounding_resource: str
    resource_us: Dict[str, float]
    #: which model produced the estimate: "analytic" or "events"
    sim_mode: str = "analytic"
    #: per-request completion-latency percentiles (p50/p95/p99, µs); from
    #: receipt latencies on the analytic path, from simulated completion
    #: timestamps (queue waiting included) on the event path
    latency_percentiles: Dict[str, float] = field(default_factory=dict)

    def percentile(self, name: str) -> float:
        """A latency percentile by key ("p50", "p95", "p99"); 0 if absent."""
        return self.latency_percentiles.get(name, 0.0)

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (f"{self.bandwidth_mbps:8.1f} MiB/s  {self.iops:9.0f} IOPS  "
                f"lat {self.mean_latency_us:7.1f} us  "
                f"bound={self.bounding_resource}")
        if self.latency_percentiles:
            text += (f"  p50={self.percentile('p50'):.0f}"
                     f" p95={self.percentile('p95'):.0f}"
                     f" p99={self.percentile('p99'):.0f} us")
        return text


class PerformanceModel:
    """Turns a :class:`CostLedger` into a :class:`PerformanceEstimate`."""

    def __init__(self, params: CostParameters) -> None:
        self._params = params

    @property
    def params(self) -> CostParameters:
        """The cost parameters this model applies."""
        return self._params

    def estimate(self, ledger: CostLedger, total_bytes: int,
                 queue_depth: int,
                 latencies_us: Optional[Sequence[float]] = None,
                 ) -> PerformanceEstimate:
        """Analytic fast path: two-bound estimate from the ledger.

        ``latencies_us`` optionally supplies the per-request receipt
        latencies so the estimate carries p50/p95/p99 percentiles (the
        analytic model has no queueing, so these reflect the service-time
        distribution only).
        """
        if queue_depth <= 0:
            raise ConfigurationError("queue depth must be positive")
        params = self._params

        effective: Dict[str, float] = {}
        effective[RES_CLIENT_NET] = ledger.resource(RES_CLIENT_NET)
        effective[RES_CLIENT_CPU] = ledger.resource(RES_CLIENT_CPU)
        effective[RES_CLUSTER_NET] = ledger.resource(RES_CLUSTER_NET)
        # OSD-side work (transaction processing CPU plus device occupancy)
        # is spread across all OSDs (uniform placement) and each OSD's
        # transaction shards; within one shard CPU and device time do not
        # overlap, which is what makes per-sector metadata cost something.
        osd_div = params.osd_count * max(1, params.osd_shards)
        osd_work = (ledger.resource(RES_OSD_DEVICE)
                    + ledger.resource(RES_OSD_CPU)) / osd_div
        effective["osd.work"] = osd_work

        latency_bound = ledger.latency_sum_us / queue_depth
        resource_bound_name = max(effective, key=lambda k: effective[k])
        resource_bound = effective[resource_bound_name]

        if latency_bound >= resource_bound:
            elapsed = latency_bound
            bounding = "latency(qd)"
        else:
            elapsed = resource_bound
            bounding = resource_bound_name
        elapsed = max(elapsed, 1e-6)

        bandwidth = total_bytes / (1024 * 1024) / (elapsed / 1e6)
        iops = ledger.op_count / (elapsed / 1e6) if ledger.op_count else 0.0
        return PerformanceEstimate(
            elapsed_us=elapsed,
            total_bytes=total_bytes,
            bandwidth_mbps=bandwidth,
            iops=iops,
            mean_latency_us=ledger.mean_latency_us(),
            bounding_resource=bounding,
            resource_us=dict(effective),
            sim_mode="analytic",
            latency_percentiles=(latency_percentiles(latencies_us)
                                 if latencies_us else {}),
        )

    def estimate_events(self, streams: Sequence[Sequence[ClientOpTrace]],
                        total_bytes: int,
                        queue_depth: int) -> PerformanceEstimate:
        """Accurate path: replay recorded op traces through the event engine.

        ``streams`` holds one trace list per client; every client keeps
        ``queue_depth`` operations in flight against the shared cluster.
        Elapsed time is the completion timestamp of the last operation;
        percentiles come from simulated per-request completion latencies,
        queue waiting included.
        """
        result = simulate_client_ops(self._params, streams, queue_depth)
        return self.estimate_from_events(result, total_bytes)

    def estimate_from_events(self, result, total_bytes: int,
                             ) -> PerformanceEstimate:
        """Convert a finished event replay (:class:`EventSimResult`) into an
        estimate — split out so callers that also need the replay's raw
        latency samples run the simulation once.

        The mean comes from the replay's exact population moments (the
        reservoir tracks count/sum over *every* request, not just the
        retained sample); percentiles read from the reservoir sample,
        which is the full population for runs below its capacity.
        """
        elapsed = max(result.elapsed_us, 1e-6)
        bandwidth = total_bytes / (1024 * 1024) / (elapsed / 1e6)
        iops = result.requests / (elapsed / 1e6) if result.requests else 0.0
        stats = result.request_stats
        return PerformanceEstimate(
            elapsed_us=elapsed,
            total_bytes=total_bytes,
            bandwidth_mbps=bandwidth,
            iops=iops,
            mean_latency_us=stats.mean_us,
            bounding_resource=result.bounding_resource,
            resource_us=dict(result.resource_us),
            sim_mode="events",
            latency_percentiles=stats.percentiles(LATENCY_PERCENTILES),
        )


def batch_report(ledger: CostLedger, replica_count: int = 1) -> Dict[str, float]:
    """Summarize how much transaction amortization a run achieved.

    Returns the engine-side batch counters together with the RADOS-side
    view (how many transactions carried more than one data extent and the
    average extents per such transaction), so benchmarks can assert that
    batching actually reached the OSDs rather than being split back up.

    The raw ``rados.*`` counters record one apply per replica; pass the
    cluster's ``replica_count`` to normalize them to client-visible
    transaction counts comparable with the ``engine.*`` counters.
    """
    if replica_count <= 0:
        raise ConfigurationError("replica_count must be positive")
    batches = ledger.counter("engine.batches")
    multi = ledger.counter("rados.multi_extent_transactions") / replica_count
    return {
        "engine_batches": batches,
        "engine_batched_requests": ledger.counter("engine.batched_requests"),
        "engine_mean_batch_blocks": ledger.mean_batch_blocks(),
        "rados_transactions": (
            ledger.counter("rados.transactions") / replica_count),
        "rados_multi_extent_transactions": multi,
        "rados_mean_extents_per_batch": (
            ledger.counter("rados.batched_extents") / replica_count / multi
            if multi else 0.0),
    }
