"""Multi-client workload runner: N independent streams, one shared cluster.

The paper's numbers come from *many* fio clients hammering the replicated
cluster at once; a single closed-loop stream cannot reproduce that regime.
:class:`ClusterWorkloadRunner` interleaves ``spec.num_clients`` independent
request streams — each with its own image, its own deterministic seed
(:meth:`~repro.workload.spec.WorkloadSpec.for_client`) and, when batching
is on, its own :class:`~repro.engine.pipeline.IoPipeline` — onto one shared
cluster, then hands the per-client operation traces to the performance
model:

* in ``events`` mode the traces replay through the discrete-event engine
  with every client keeping ``queue_depth`` ops in flight, so the shared
  OSD queues produce real contention: sub-linear aggregate bandwidth and a
  rising p99;
* in ``analytic`` mode the ledger delta is estimated at an effective depth
  of ``num_clients * queue_depth`` — useful as a contention-free upper
  bound, and exactly what the contention benchmark compares against.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .arrival import arrival_process_for, arrival_schedule
from .generator import generate_request_list
from .runner import (BatchedStreamIssuer, WorkloadResult, WorkloadRunner,
                     finish_cache_flush, prefill_image, wrap_in_cache)
from .spec import WorkloadSpec
from ..engine.pipeline import EngineConfig, IoPipeline
from ..errors import WorkloadError
from ..rados.cluster import Cluster
from ..rbd.image import Image
from ..sim.perfmodel import PerformanceModel
from ..sim.scheduler import simulate_client_ops, simulate_open_loop


@dataclass
class ClusterWorkloadResult(WorkloadResult):
    """Aggregate measurements of one multi-client run.

    ``estimate`` covers the whole cluster (aggregate bandwidth, combined
    IOPS, percentiles over every client's requests);
    ``per_client_latencies_us`` keeps each stream's own sample for
    fairness analysis.
    """

    num_clients: int = 1
    per_client_latencies_us: List[List[float]] = field(default_factory=list)

    def render(self) -> str:
        """One-line summary used by the benchmark output."""
        return (f"{self.layout:14s} {self.spec.rw:9s} "
                f"bs={self.spec.io_size:>8d} x{self.num_clients:<3d} "
                f"{self.bandwidth_mbps:9.1f} MiB/s  {self.iops:9.0f} IOPS  "
                f"p99={self.percentile('p99'):9.1f} us")


class _ClientStream:
    """One client's request stream plus its issue-side state."""

    def __init__(self, index: int, image: Image, spec: WorkloadSpec) -> None:
        self.index = index
        # Each client stream owns its cache (client-side caching), wrapped
        # around its own image.
        self.image = wrap_in_cache(image, spec)
        self.cached = self.image if self.image is not image else None
        self.spec = spec
        self.requests = generate_request_list(spec, image.size)
        self.cursor = 0
        self.write_buffer = os.urandom(spec.io_size)
        self.latencies: List[float] = []
        self.total_bytes = 0
        self.issuer: Optional[BatchedStreamIssuer] = None
        if spec.batched:
            pipeline = IoPipeline(self.image, EngineConfig(
                queue_depth=spec.queue_depth, batch_size=spec.batch_size))
            self.issuer = BatchedStreamIssuer(pipeline, spec)

    @property
    def exhausted(self) -> bool:
        return self.cursor >= len(self.requests)


class ClusterWorkloadRunner:
    """Runs one workload spec as N concurrent client streams.

    ``tracer`` records span timelines exactly as in
    :class:`~repro.workload.runner.WorkloadRunner`; each client stream
    lands on its own span track.
    """

    def __init__(self, cluster: Cluster, tracer=None) -> None:
        self._cluster = cluster
        self._model = PerformanceModel(cluster.params)
        self._tracer = tracer

    @property
    def cluster(self) -> Cluster:
        """The shared cluster every client stream contends for."""
        return self._cluster

    @property
    def sim_mode(self) -> str:
        """Which performance model converts the run into elapsed time."""
        return getattr(self._cluster.params, "sim_mode", "analytic")

    def run(self, images: Sequence[Image], spec: WorkloadSpec,
            layout_name: Optional[str] = None) -> ClusterWorkloadResult:
        """Execute ``spec`` across ``images`` (one per client stream)."""
        if len(images) != spec.num_clients:
            raise WorkloadError(
                f"spec wants {spec.num_clients} clients but "
                f"{len(images)} images were provided")
        if spec.open_loop and self.sim_mode != "events":
            raise WorkloadError(
                "open-loop arrivals need sim_mode='events' (the analytic "
                "model has no notion of arrival times)")
        if spec.prefill:
            for image in images:
                prefill_image(image)

        ledger = self._cluster.ledger
        before = ledger.snapshot()
        events = self.sim_mode == "events"
        capture = events or self._tracer is not None
        traces_before = len(ledger.client_ops)
        if capture:
            ledger.trace_ops = True
        streams = [_ClientStream(i, image, spec.for_client(i))
                   for i, image in enumerate(images)]
        try:
            self._interleave(streams)
        finally:
            if capture:
                ledger.trace_ops = False
                ledger.trace_client = 0
                ledger.discard_open_traces()

        delta = ledger.diff(before)
        total_bytes = sum(stream.total_bytes for stream in streams)
        latencies = [lat for stream in streams for lat in stream.latencies]
        per_client_latencies = [s.latencies for s in streams]
        model_depth = 1 if spec.batched else spec.queue_depth
        if events:
            traces = ledger.pop_client_ops(traces_before)
            per_client = [[cop for cop in traces if cop.client == i]
                          for i in range(spec.num_clients)]
            if spec.open_loop:
                # Each client issues on its own deterministic schedule
                # (the process seeds per client index), sized to the
                # stream's sealed op count.
                arrivals = arrival_schedule(
                    arrival_process_for(spec),
                    [len(stream) for stream in per_client])
                sim = simulate_open_loop(self._cluster.params, per_client,
                                         arrivals, tracer=self._tracer)
            else:
                sim = simulate_client_ops(self._cluster.params, per_client,
                                          model_depth, tracer=self._tracer)
            estimate = self._model.estimate_from_events(sim, total_bytes)
            # As in WorkloadRunner: report simulated completion latencies
            # so the samples agree with the estimate's percentiles.
            latencies = list(sim.request_latencies_us)
            per_client_latencies = [list(sample) for sample in
                                    sim.client_request_latencies_us]
        else:
            if self._tracer is not None:
                from ..obs.spans import spans_from_client_ops
                traces = ledger.pop_client_ops(traces_before)
                for i in range(spec.num_clients):
                    spans_from_client_ops(
                        [cop for cop in traces if cop.client == i],
                        self._tracer, client=i)
            # Without queueing, N independent depth-QD streams look like
            # one stream at depth N*QD to the Little's-law bound.
            estimate = self._model.estimate(
                delta, total_bytes, model_depth * spec.num_clients,
                latencies_us=latencies)
        layout = layout_name or self._layout_of(images[0])
        return ClusterWorkloadResult(
            spec=spec, layout=layout, estimate=estimate,
            counters=dict(delta.counters), latencies_us=latencies,
            num_clients=spec.num_clients,
            per_client_latencies_us=per_client_latencies)

    # -- issue-side machinery --------------------------------------------------

    def _interleave(self, streams: List[_ClientStream]) -> None:
        """Round-robin one request per client until every stream drains.

        Functional state is interleaved deterministically; *timing*
        interleaving happens later in the event replay, so the issue order
        here only has to keep each client's trace stream attributed to the
        right client (``ledger.trace_client`` is set before every issue
        and every completion poll).
        """
        live = list(streams)
        while live:
            for stream in live:
                self._issue_one(stream)
            for stream in live:
                if stream.exhausted:
                    self._finish_stream(stream)
            live = [s for s in live if not s.exhausted]

    def _issue_one(self, stream: _ClientStream) -> None:
        if stream.exhausted:
            return
        ledger = self._cluster.ledger
        ledger.trace_client = stream.index
        request = stream.requests[stream.cursor]
        stream.cursor += 1
        stream.total_bytes += request.length
        if stream.issuer is not None:
            # Shared issue policy with the single-client runner.
            stream.issuer.issue(request, stream.write_buffer)
            for completion in stream.issuer.pipeline.poll():
                self._finish_completion(stream, completion)
            return
        if request.op == "write":
            receipt = stream.image.write(
                request.offset, stream.write_buffer[:request.length])
        else:
            receipt = stream.image.read_with_receipt(
                request.offset, request.length).receipt
        ledger.finish_op(receipt)
        stream.latencies.append(receipt.latency_us)

    def _finish_stream(self, stream: _ClientStream) -> None:
        """Drain an exhausted stream: pipeline first, then its cache."""
        ledger = self._cluster.ledger
        if stream.issuer is not None:
            ledger.trace_client = stream.index
            for completion in stream.issuer.drain():
                self._finish_completion(stream, completion)
        if stream.cached is not None:
            ledger.trace_client = stream.index
            finish_cache_flush(ledger, stream.cached, stream.latencies)

    def _finish_completion(self, stream: _ClientStream, completion) -> None:
        ledger = self._cluster.ledger
        ledger.trace_client = stream.index
        WorkloadRunner._finish_completion(ledger, completion,
                                          stream.latencies)

    @staticmethod
    def _layout_of(image: Image) -> str:
        layout = getattr(image.dispatcher, "layout", None)
        return layout.name if layout is not None else "plaintext"
