"""Small statistics helpers for the benchmark harness."""

from __future__ import annotations

from typing import Dict, Sequence

from ..util import percentile

__all__ = ["mean", "percentile", "summarize_latencies",
           "coefficient_of_variation", "relative_change"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def summarize_latencies(latencies_us: Sequence[float]) -> Dict[str, float]:
    """Mean / p50 / p95 / p99 / max summary of a latency sample."""
    return {
        "mean": mean(latencies_us),
        "p50": percentile(latencies_us, 50),
        "p95": percentile(latencies_us, 95),
        "p99": percentile(latencies_us, 99),
        "max": max(latencies_us) if latencies_us else 0.0,
    }


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Relative standard deviation (population), 0 when mean is 0."""
    values = list(values)
    if not values:
        return 0.0
    avg = mean(values)
    if avg == 0:
        return 0.0
    variance = sum((v - avg) ** 2 for v in values) / len(values)
    return (variance ** 0.5) / avg


def relative_change(value: float, baseline: float) -> float:
    """``(value - baseline) / baseline`` guarded against a zero baseline."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline
