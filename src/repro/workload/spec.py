"""Workload specifications (the fio job file of the reproduction)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import WorkloadError
from ..util import KIB, MIB, parse_size

#: The IO-size sweep of the paper's Fig. 3 / Fig. 4 (4 KiB ... 4 MiB).
PAPER_IO_SIZES = (4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB, 128 * KIB,
                  256 * KIB, 512 * KIB, 1024 * KIB, 2048 * KIB, 4096 * KIB)

_VALID_PATTERNS = ("randread", "randwrite", "read", "write", "randrw")


@dataclass(frozen=True)
class IORequest:
    """One request produced by the generator."""

    op: str          #: "read" or "write"
    offset: int
    length: int


@dataclass
class WorkloadSpec:
    """Description of one fio-style job."""

    name: str = "job"
    #: access pattern: randread / randwrite / read / write / randrw
    rw: str = "randwrite"
    io_size: int = 4 * KIB
    queue_depth: int = 32
    #: how many requests to issue (if None, derived from total_bytes)
    io_count: Optional[int] = None
    #: total bytes to move (used when io_count is None)
    total_bytes: Optional[int] = 32 * MIB
    #: fraction of reads in a randrw mix
    read_fraction: float = 0.5
    #: RNG seed for offset/op selection (deterministic runs)
    seed: int = 42
    #: write the image sequentially before measuring (needed for reads)
    prefill: bool = False
    #: drive the IO through the batched engine (:mod:`repro.engine`): up to
    #: ``queue_depth`` requests coalesce into one RADOS transaction per object
    batched: bool = False
    #: cap on blocks one object accumulates per engine window (None = no cap)
    batch_size: Optional[int] = None
    #: how many independent client streams issue this job concurrently
    #: against one shared cluster (each stream keeps ``queue_depth`` ops in
    #: flight; >1 requires the ClusterWorkloadRunner and the event-driven
    #: sim mode to mean anything — the analytic model cannot see contention)
    num_clients: int = 1
    #: client-side cache mode: None (off), "writethrough", "writeback"
    #: (block cache) or "pwl" (crash-safe persistent write log); each
    #: client stream gets its own cache/log
    cache_mode: Optional[str] = None
    #: cache capacity in bytes (None = the cache package default)
    cache_size: Optional[int] = None
    #: cache eviction policy: "lru" or "arc"
    cache_policy: str = "lru"
    #: maximum blocks of sequential-read prefetch (0 = readahead off)
    readahead: int = 0
    #: issue operations open-loop: each op starts at a timestamp drawn
    #: from the arrival process (``arrival_rate``) instead of waiting for
    #: a completion slot.  Offered load no longer adapts to the system —
    #: overload shows up as unbounded queueing and a collapsing tail —
    #: and the replay can be fully vectorized.  Needs ``sim_mode="events"``
    #: (the analytic model has no notion of arrival times).
    open_loop: bool = False
    #: open-loop Poisson arrival rate per client, in client-visible
    #: operations per second (required when ``open_loop`` is set)
    arrival_rate: Optional[float] = None
    #: name of the golden image this job's images are clones of (None =
    #: standalone images); image construction is done by the harness
    #: (:func:`repro.clone.clone_fanout`, ``SweepConfig``), the spec only
    #: carries the scenario shape so runs stay self-describing
    parent_image: Optional[str] = None
    #: layers between each client's image and the golden image (0 = not a
    #: clone scenario; >= 1 requires ``parent_image``)
    clone_depth: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rw not in _VALID_PATTERNS:
            raise WorkloadError(
                f"unknown access pattern {self.rw!r}; valid: {_VALID_PATTERNS}")
        if isinstance(self.io_size, str):
            self.io_size = parse_size(self.io_size)
        if self.io_size <= 0:
            raise WorkloadError("io_size must be positive")
        if self.queue_depth <= 0:
            raise WorkloadError("queue_depth must be positive")
        if self.io_count is None and self.total_bytes is None:
            raise WorkloadError("one of io_count or total_bytes is required")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError("read_fraction must be within [0, 1]")
        if self.batch_size is not None and self.batch_size <= 0:
            raise WorkloadError("batch_size must be positive")
        if self.batch_size is not None and not self.batched:
            raise WorkloadError("batch_size only takes effect with batched=True")
        if self.num_clients <= 0:
            raise WorkloadError("num_clients must be positive")
        from ..cache.config import CACHE_MODES, CACHE_POLICIES
        if self.cache_mode is not None and self.cache_mode not in CACHE_MODES:
            raise WorkloadError(
                f"cache_mode must be None or one of {CACHE_MODES}")
        if self.cache_policy not in CACHE_POLICIES:
            raise WorkloadError(
                f"cache_policy must be one of {CACHE_POLICIES}")
        if isinstance(self.cache_size, str):
            self.cache_size = parse_size(self.cache_size)
        if self.cache_size is not None and self.cache_size <= 0:
            raise WorkloadError("cache_size must be positive")
        if self.readahead < 0:
            raise WorkloadError("readahead must be >= 0")
        if self.cache_mode is None and (self.cache_size is not None
                                        or self.readahead
                                        or self.cache_policy != "lru"):
            raise WorkloadError(
                "cache_size/readahead/cache_policy only take effect with "
                "a cache_mode")
        if self.open_loop and self.arrival_rate is None:
            raise WorkloadError("open_loop needs an arrival_rate (ops/s)")
        if self.arrival_rate is not None:
            if not self.open_loop:
                raise WorkloadError(
                    "arrival_rate only takes effect with open_loop=True")
            if self.arrival_rate <= 0:
                raise WorkloadError("arrival_rate must be positive")
        if self.clone_depth < 0:
            raise WorkloadError("clone_depth must be >= 0")
        if self.clone_depth and not self.parent_image:
            raise WorkloadError("clone_depth requires a parent_image")
        if self.parent_image and not self.clone_depth:
            self.clone_depth = 1

    @property
    def is_random(self) -> bool:
        """True for random-offset patterns."""
        return self.rw.startswith("rand")

    def resolved_io_count(self, image_size: int) -> int:
        """Number of requests to issue against an image of ``image_size``."""
        if self.io_size > image_size:
            raise WorkloadError(
                f"io_size {self.io_size} exceeds image size {image_size}")
        if self.io_count is not None:
            return max(1, self.io_count)
        return max(1, int(self.total_bytes) // self.io_size)

    def for_client(self, client: int) -> "WorkloadSpec":
        """The per-stream job one client of a multi-client run issues.

        Streams are independent (fio's ``numjobs``): same shape, a
        distinct deterministic seed so the clients do not replay identical
        offsets in lockstep.
        """
        return replace(self, name=f"{self.name}.c{client}",
                       seed=self.seed + 7919 * client, num_clients=1)

    def cache_config(self):
        """The :class:`~repro.cache.CacheConfig` this spec asks for
        (``None`` when caching is off)."""
        if self.cache_mode is None:
            return None
        from ..cache.config import CacheConfig, DEFAULT_CACHE_SIZE
        return CacheConfig(mode=self.cache_mode,
                           size=self.cache_size or DEFAULT_CACHE_SIZE,
                           policy=self.cache_policy,
                           readahead_blocks=self.readahead)

    def describe(self) -> str:
        """Short fio-style description."""
        engine = " engine=batched" if self.batched else ""
        clients = f" clients={self.num_clients}" if self.num_clients > 1 else ""
        cache = f" cache={self.cache_mode}" if self.cache_mode else ""
        clone = (f" clone-of={self.parent_image} depth={self.clone_depth}"
                 if self.parent_image else "")
        arrivals = (f" open-loop rate={self.arrival_rate:g}/s"
                    if self.open_loop else "")
        return (f"{self.name}: rw={self.rw} bs={self.io_size} "
                f"qd={self.queue_depth} seed={self.seed}{engine}{clients}"
                f"{cache}{clone}{arrivals}")
