"""fio-like workload generation and benchmark running.

The paper drives its prototype with fio (random read / random write, IO
sizes 4 KiB to 4 MiB, queue depth 32, ten repeats) and reports bandwidth.
This package reproduces that harness against the simulated cluster: a
workload specification, a deterministic request generator, and a runner
that executes requests against an (encrypted) image, collects the cost
ledger delta and converts it into simulated bandwidth via the performance
model.
"""

from .spec import IORequest, WorkloadSpec, PAPER_IO_SIZES
from .generator import generate_requests
from .arrival import (ArrivalProcess, PoissonArrivals, TraceArrivals,
                      arrival_process_for, arrival_schedule)
from .runner import (WorkloadResult, WorkloadRunner, capture_template_stream,
                     prefill_image)
from .cluster_runner import ClusterWorkloadResult, ClusterWorkloadRunner
from .stats import mean, percentile, summarize_latencies

__all__ = [
    "IORequest", "WorkloadSpec", "PAPER_IO_SIZES", "generate_requests",
    "ArrivalProcess", "PoissonArrivals", "TraceArrivals",
    "arrival_process_for", "arrival_schedule",
    "WorkloadResult", "WorkloadRunner", "prefill_image",
    "capture_template_stream",
    "ClusterWorkloadResult", "ClusterWorkloadRunner", "mean", "percentile",
    "summarize_latencies",
]
