"""Workload runner: executes a spec against an image and measures simulated
throughput.

The runner is the reproduction's fio: it generates the request stream,
issues each request against the image (plaintext or encrypted — the image's
dispatcher decides), collects per-request cost receipts and the cluster's
cost-ledger delta, and asks the performance model for the simulated elapsed
time, bandwidth and IOPS.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .generator import generate_requests
from .spec import WorkloadSpec
from ..engine.pipeline import EngineConfig, IoPipeline
from ..rados.cluster import Cluster
from ..rbd.image import Image
from ..sim.ledger import CostLedger
from ..sim.perfmodel import PerformanceEstimate, PerformanceModel
from ..util import MIB


def prefill_image(image: Image, chunk_size: int = MIB,
                  pattern_seed: int = 7) -> None:
    """Write the whole image once so later reads hit real (encrypted) data.

    The paper measures against a fully written 64 GiB image; read workloads
    on a sparse image would skip decryption entirely and be meaningless.
    """
    rng_buffer = os.urandom(min(chunk_size, image.size))
    offset = 0
    while offset < image.size:
        length = min(chunk_size, image.size - offset)
        payload = rng_buffer[:length]
        image.write(offset, payload)
        offset += length


@dataclass
class WorkloadResult:
    """Everything measured for one (workload, image/layout) combination."""

    spec: WorkloadSpec
    layout: str
    estimate: PerformanceEstimate
    counters: Dict[str, float] = field(default_factory=dict)
    latencies_us: List[float] = field(default_factory=list)

    @property
    def bandwidth_mbps(self) -> float:
        """Simulated bandwidth in MiB/s."""
        return self.estimate.bandwidth_mbps

    @property
    def iops(self) -> float:
        """Simulated IO operations per second."""
        return self.estimate.iops

    def counter(self, name: str) -> float:
        """A ledger counter measured during the run (0 if absent)."""
        return self.counters.get(name, 0.0)

    def render(self) -> str:
        """One-line summary used by the benchmark output."""
        return (f"{self.layout:14s} {self.spec.rw:9s} bs={self.spec.io_size:>8d} "
                f"{self.bandwidth_mbps:9.1f} MiB/s  {self.iops:9.0f} IOPS")


class WorkloadRunner:
    """Runs workload specs against images on one cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self._model = PerformanceModel(cluster.params)

    @property
    def cluster(self) -> Cluster:
        """The cluster whose ledger and parameters the runner uses."""
        return self._cluster

    def run(self, image: Image, spec: WorkloadSpec,
            layout_name: Optional[str] = None) -> WorkloadResult:
        """Execute ``spec`` against ``image`` and return the measurements."""
        if spec.prefill:
            prefill_image(image)

        ledger = self._cluster.ledger
        before = ledger.snapshot()
        write_buffer = os.urandom(spec.io_size)
        latencies: List[float] = []
        total_bytes = 0

        if spec.batched:
            total_bytes = self._run_batched(image, spec, write_buffer,
                                            latencies)
        else:
            for request in generate_requests(spec, image.size):
                if request.op == "write":
                    receipt = image.write(request.offset,
                                          write_buffer[:request.length])
                else:
                    receipt = image.read_with_receipt(request.offset,
                                                      request.length).receipt
                ledger.finish_op(receipt)
                latencies.append(receipt.latency_us)
                total_bytes += request.length

        delta = ledger.diff(before)
        # Batched windows are issued serially (the window *is* the queue
        # depth), so the Little's-law bound runs at depth 1; unbatched runs
        # keep spec.queue_depth operations in flight.
        model_depth = 1 if spec.batched else spec.queue_depth
        estimate = self._model.estimate(delta, total_bytes, model_depth)
        layout = layout_name or self._layout_of(image)
        return WorkloadResult(spec=spec, layout=layout, estimate=estimate,
                              counters=dict(delta.counters),
                              latencies_us=latencies)

    def _run_batched(self, image: Image, spec: WorkloadSpec,
                     write_buffer: bytes, latencies: List[float]) -> int:
        """Drive the request stream through the batched I/O engine.

        Writes accumulate in the pipeline's window; consecutive reads are
        collected into a window of the same depth and issued as one
        vectored read.  Each completed window is one client-visible
        operation covering all its requests.
        """
        ledger = self._cluster.ledger
        pipeline = IoPipeline(image, EngineConfig(
            queue_depth=spec.queue_depth, batch_size=spec.batch_size))
        pending_reads: List = []
        total_bytes = 0

        def flush_reads() -> None:
            if pending_reads:
                pipeline.read_extents(pending_reads)
                pending_reads.clear()

        for request in generate_requests(spec, image.size):
            total_bytes += request.length
            if request.op == "write":
                flush_reads()
                pipeline.write(request.offset, write_buffer[:request.length])
            else:
                pending_reads.append((request.offset, request.length))
                if len(pending_reads) >= spec.queue_depth:
                    flush_reads()
            for completion in pipeline.poll():
                self._finish_completion(ledger, completion, latencies)
        flush_reads()
        for completion in pipeline.drain():
            self._finish_completion(ledger, completion, latencies)
        return total_bytes

    @staticmethod
    def _finish_completion(ledger: CostLedger, completion,
                           latencies: List[float]) -> None:
        """Record a finished window: the batch latency is amortized over its
        requests so ``latencies_us`` stays per-request (comparable with
        unbatched runs and with the ledger's own mean)."""
        ledger.finish_op(completion.receipt, ops=completion.requests)
        per_request = completion.receipt.latency_us / completion.requests
        latencies.extend([per_request] * completion.requests)

    def run_many(self, image: Image, specs: List[WorkloadSpec],
                 layout_name: Optional[str] = None) -> List[WorkloadResult]:
        """Run several specs back to back against the same image."""
        return [self.run(image, spec, layout_name) for spec in specs]

    @staticmethod
    def _layout_of(image: Image) -> str:
        dispatcher = image.dispatcher
        layout = getattr(dispatcher, "layout", None)
        if layout is not None:
            return layout.name
        return "plaintext"


def fresh_ledger_copy(cluster: Cluster) -> CostLedger:
    """Snapshot helper exposed for tests that inspect raw ledger deltas."""
    return cluster.ledger.snapshot()
