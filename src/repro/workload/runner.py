"""Workload runner: executes a spec against an image and measures simulated
throughput.

The runner is the reproduction's fio: it generates the request stream,
issues each request against the image (plaintext or encrypted — the image's
dispatcher decides), collects per-request cost receipts and the cluster's
cost-ledger delta, and asks the performance model for the simulated elapsed
time, bandwidth and IOPS.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .arrival import arrival_process_for, arrival_schedule
from .generator import generate_requests
from .spec import WorkloadSpec
from ..engine.pipeline import EngineConfig, IoPipeline
from ..errors import WorkloadError
from ..rados.cluster import Cluster
from ..rbd.image import Image
from ..sim.ledger import ClientOpTrace, CostLedger
from ..sim.perfmodel import PerformanceEstimate, PerformanceModel
from ..sim.scheduler import simulate_client_ops, simulate_open_loop
from ..util import MIB


def wrap_in_cache(image: Image, spec: WorkloadSpec):
    """Wrap ``image`` in the spec's client-side cache (no-op when off).

    Cache mode ``"pwl"`` selects the crash-safe persistent write log
    (:class:`repro.pwl.PwlImage`) instead of the block cache.
    """
    config = spec.cache_config()
    from ..cache import wrap_image
    return wrap_image(image, config)


def finish_cache_flush(ledger: CostLedger, cached, latencies: List[float]) -> None:
    """Issue a cached run's final flush barrier and account it.

    The flush is one client-visible operation (fio's ``end_fsync``); runs
    that left no dirty blocks record nothing.
    """
    receipt = cached.flush()
    if receipt.latency_us or receipt.bytes_moved:
        ledger.finish_op(receipt)
        latencies.append(receipt.latency_us)


def prefill_image(image: Image, chunk_size: int = MIB,
                  pattern_seed: int = 7) -> None:
    """Write the whole image once so later reads hit real (encrypted) data.

    The paper measures against a fully written 64 GiB image; read workloads
    on a sparse image would skip decryption entirely and be meaningless.
    """
    rng_buffer = os.urandom(min(chunk_size, image.size))
    offset = 0
    while offset < image.size:
        length = min(chunk_size, image.size - offset)
        payload = rng_buffer[:length]
        image.write(offset, payload)
        offset += length


@dataclass
class WorkloadResult:
    """Everything measured for one (workload, image/layout) combination."""

    spec: WorkloadSpec
    layout: str
    estimate: PerformanceEstimate
    counters: Dict[str, float] = field(default_factory=dict)
    latencies_us: List[float] = field(default_factory=list)

    @property
    def bandwidth_mbps(self) -> float:
        """Simulated bandwidth in MiB/s."""
        return self.estimate.bandwidth_mbps

    @property
    def iops(self) -> float:
        """Simulated IO operations per second."""
        return self.estimate.iops

    @property
    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 per-request completion latency (µs)."""
        return self.estimate.latency_percentiles

    def percentile(self, name: str) -> float:
        """One latency percentile by key ("p50", "p95", "p99")."""
        return self.estimate.percentile(name)

    def counter(self, name: str) -> float:
        """A ledger counter measured during the run (0 if absent)."""
        return self.counters.get(name, 0.0)

    def render(self) -> str:
        """One-line summary used by the benchmark output."""
        return (f"{self.layout:14s} {self.spec.rw:9s} bs={self.spec.io_size:>8d} "
                f"{self.bandwidth_mbps:9.1f} MiB/s  {self.iops:9.0f} IOPS")


class BatchedStreamIssuer:
    """The shared per-request issue policy for pipeline-driven streams.

    Writes flush any pending reads first (the pipeline's read barrier
    would do it anyway, but batching the reads beforehand keeps read
    windows intact); reads collect into windows of ``queue_depth`` and
    travel as one vectored read.  Used by both the single-client runner
    and the multi-client ClusterWorkloadRunner so the two cannot drift.
    """

    def __init__(self, pipeline: IoPipeline, spec: WorkloadSpec) -> None:
        self.pipeline = pipeline
        self._spec = spec
        self._pending_reads: List = []

    def issue(self, request, write_buffer: bytes) -> None:
        """Feed one request to the pipeline under the issue policy."""
        if request.op == "write":
            self.flush_reads()
            self.pipeline.write(request.offset,
                                write_buffer[:request.length])
        else:
            self._pending_reads.append((request.offset, request.length))
            if len(self._pending_reads) >= self._spec.queue_depth:
                self.flush_reads()

    def flush_reads(self) -> None:
        """Issue the collected read window (no-op when empty)."""
        if self._pending_reads:
            self.pipeline.read_extents(self._pending_reads)
            self._pending_reads = []

    def drain(self):
        """Flush reads and writes; returns the final completions."""
        self.flush_reads()
        return self.pipeline.drain()


class WorkloadRunner:
    """Runs workload specs against images on one cluster.

    ``tracer`` (a :class:`repro.obs.SpanTracer`) records the run's span
    timeline: in events mode the replay emits spans at the exact
    sim-clock instants that produce the reported latencies; in analytic
    mode the sealed traces are laid out on the serial contention-free
    timeline the closed-form bound assumes.
    """

    def __init__(self, cluster: Cluster, tracer=None) -> None:
        self._cluster = cluster
        self._model = PerformanceModel(cluster.params)
        self._tracer = tracer

    @property
    def cluster(self) -> Cluster:
        """The cluster whose ledger and parameters the runner uses."""
        return self._cluster

    @property
    def sim_mode(self) -> str:
        """Which performance model converts the run into elapsed time."""
        return getattr(self._cluster.params, "sim_mode", "analytic")

    def run(self, image: Image, spec: WorkloadSpec,
            layout_name: Optional[str] = None) -> WorkloadResult:
        """Execute ``spec`` against ``image`` and return the measurements."""
        if spec.open_loop and self.sim_mode != "events":
            raise WorkloadError(
                "open-loop arrivals need sim_mode='events' (the analytic "
                "model has no notion of arrival times)")
        if spec.prefill:
            prefill_image(image)
        # The cache (if requested) wraps the image *after* the prefill so
        # measurements start from a cold cache, like a freshly mapped disk.
        io_image = wrap_in_cache(image, spec)

        ledger = self._cluster.ledger
        before = ledger.snapshot()
        write_buffer = os.urandom(spec.io_size)
        latencies: List[float] = []
        total_bytes = 0
        events = self.sim_mode == "events"
        capture = events or self._tracer is not None
        traces_before = len(ledger.client_ops)
        if capture:
            ledger.trace_ops = True
        try:
            if spec.batched:
                total_bytes = self._run_batched(io_image, spec, write_buffer,
                                                latencies)
            else:
                for request in generate_requests(spec, io_image.size):
                    if request.op == "write":
                        receipt = io_image.write(request.offset,
                                                 write_buffer[:request.length])
                    else:
                        receipt = io_image.read_with_receipt(
                            request.offset, request.length).receipt
                    ledger.finish_op(receipt)
                    latencies.append(receipt.latency_us)
                    total_bytes += request.length
            if io_image is not image:
                # End-of-run flush barrier: dirty writeback blocks reach
                # the cluster inside the measured window, accounted as one
                # final client-visible operation (like fio's end_fsync).
                finish_cache_flush(ledger, io_image, latencies)
        finally:
            if capture:
                ledger.trace_ops = False
                ledger.discard_open_traces()

        delta = ledger.diff(before)
        # Batched windows are issued serially (the window *is* the queue
        # depth), so the Little's-law bound runs at depth 1; unbatched runs
        # keep spec.queue_depth operations in flight.
        model_depth = 1 if spec.batched else spec.queue_depth
        if events:
            stream = ledger.pop_client_ops(traces_before)
            if spec.open_loop:
                # Issue times come from the arrival process, sized to the
                # sealed op count (cache flushes and batch windows count
                # as ops of their own).
                arrivals = arrival_schedule(arrival_process_for(spec),
                                            [len(stream)])
                sim = simulate_open_loop(self._cluster.params, [stream],
                                         arrivals, tracer=self._tracer)
            else:
                sim = simulate_client_ops(self._cluster.params, [stream],
                                          model_depth, tracer=self._tracer)
            estimate = self._model.estimate_from_events(sim, total_bytes)
            # Report the simulated completion latencies (queue waiting
            # included) so latencies_us agrees with the percentiles the
            # estimate carries, instead of the queueing-free receipts.
            latencies = list(sim.request_latencies_us)
        else:
            if self._tracer is not None:
                from ..obs.spans import spans_from_client_ops
                spans_from_client_ops(ledger.pop_client_ops(traces_before),
                                      self._tracer, client=0)
            estimate = self._model.estimate(delta, total_bytes, model_depth,
                                            latencies_us=latencies)
        layout = layout_name or self._layout_of(image)
        return WorkloadResult(spec=spec, layout=layout, estimate=estimate,
                              counters=dict(delta.counters),
                              latencies_us=latencies)

    def _run_batched(self, image: Image, spec: WorkloadSpec,
                     write_buffer: bytes, latencies: List[float]) -> int:
        """Drive the request stream through the batched I/O engine.

        Writes accumulate in the pipeline's window; consecutive reads are
        collected into a window of the same depth and issued as one
        vectored read (:class:`BatchedStreamIssuer`).  Each completed
        window is one client-visible operation covering all its requests.
        """
        ledger = self._cluster.ledger
        pipeline = IoPipeline(image, EngineConfig(
            queue_depth=spec.queue_depth, batch_size=spec.batch_size))
        issuer = BatchedStreamIssuer(pipeline, spec)
        total_bytes = 0

        for request in generate_requests(spec, image.size):
            total_bytes += request.length
            issuer.issue(request, write_buffer)
            for completion in pipeline.poll():
                self._finish_completion(ledger, completion, latencies)
        for completion in issuer.drain():
            self._finish_completion(ledger, completion, latencies)
        return total_bytes

    @staticmethod
    def _finish_completion(ledger: CostLedger, completion,
                           latencies: List[float]) -> None:
        """Record a finished window: the batch latency is amortized over its
        requests so ``latencies_us`` stays per-request (comparable with
        unbatched runs and with the ledger's own mean).

        Shared by the single- and multi-client runners.  The pipeline
        claimed each window's event-engine traces at flush time (several
        windows can complete before one poll); restoring them right before
        ``finish_op`` seals them under this completion.
        """
        ledger.restore_op_traces(completion.traces)
        ledger.finish_op(completion.receipt, ops=completion.requests)
        per_request = completion.receipt.latency_us / completion.requests
        latencies.extend([per_request] * completion.requests)

    def run_many(self, image: Image, specs: List[WorkloadSpec],
                 layout_name: Optional[str] = None) -> List[WorkloadResult]:
        """Run several specs back to back against the same image."""
        return [self.run(image, spec, layout_name) for spec in specs]

    @staticmethod
    def _layout_of(image: Image) -> str:
        dispatcher = image.dispatcher
        layout = getattr(dispatcher, "layout", None)
        if layout is not None:
            return layout.name
        return "plaintext"


def fresh_ledger_copy(cluster: Cluster) -> CostLedger:
    """Snapshot helper exposed for tests that inspect raw ledger deltas."""
    return cluster.ledger.snapshot()


def capture_template_stream(cluster: Cluster, image: Image,
                            spec: WorkloadSpec) -> List[ClientOpTrace]:
    """Issue ``spec`` once with trace capture on; return the sealed traces.

    The fleet synthesizer (:func:`repro.sim.fleet.fleet_streams_from_template`)
    scales a short *real* captured stream — actual data path, actual
    crypto and placement costs — out to thousands of clients, so the
    capture only needs to be long enough to be representative.  This
    helper is that capture: it drives the requests functionally (data is
    really written/read) and hands back the per-op traces without going
    through the performance model.
    """
    ledger = cluster.ledger
    traces_before = len(ledger.client_ops)
    write_buffer = os.urandom(spec.io_size)
    ledger.trace_ops = True
    try:
        for request in generate_requests(spec, image.size):
            if request.op == "write":
                receipt = image.write(request.offset,
                                      write_buffer[:request.length])
            else:
                receipt = image.read_with_receipt(
                    request.offset, request.length).receipt
            ledger.finish_op(receipt)
    finally:
        ledger.trace_ops = False
        ledger.discard_open_traces()
    return ledger.pop_client_ops(traces_before)
