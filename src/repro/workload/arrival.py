"""Open-loop arrival processes: when does each operation *issue*?

A closed-loop stream (fio-style, the default) keeps ``queue_depth``
operations in flight and issues the next one on a completion — offered
load adapts to the system, so overload shows up as lower throughput, not
as queueing collapse.  Fleet traffic is not closed-loop: a thousand
tenants issue IO on their own schedules, indifferent to each other's
completions.  An :class:`ArrivalProcess` models that: it assigns each
client a sorted timestamp array saying when its operations issue, and
the event replay (:func:`repro.sim.scheduler.simulate_open_loop`) starts
op ``j`` of client ``i`` at ``timestamps[i][j]`` regardless of what is
still in flight.  Under overload the queues grow without bound and the
tail percentiles say so — which is the regime the paper's multi-client
figures care about.

Every process is deterministic: timestamps depend only on the seed and
the client index, never on wall clock or issue order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import WorkloadError


class ArrivalProcess:
    """Deterministic per-client issue-timestamp generator (base class)."""

    def timestamps_us(self, client: int, count: int) -> np.ndarray:
        """Sorted microsecond issue times for ``count`` ops of ``client``."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_per_client`` operations per second.

    The canonical open-loop load model: exponential inter-arrival gaps,
    independent across clients (each client draws from its own seeded
    generator, so fleet membership or sharding never changes a client's
    schedule).
    """

    rate_per_client: float
    seed: int = 42

    def __post_init__(self) -> None:
        if self.rate_per_client <= 0:
            raise WorkloadError("arrival rate must be positive (ops/s)")

    def timestamps_us(self, client: int, count: int) -> np.ndarray:
        rng = np.random.default_rng((0x0A1B, self.seed, client))
        gaps = rng.exponential(1e6 / self.rate_per_client, size=count)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replay recorded issue timestamps (one shared template schedule).

    Every client issues on the same captured schedule — the trace-driven
    counterpart of Poisson load.  The template must be sorted and at
    least as long as any client's op count.
    """

    template_us: Sequence[float]

    def __post_init__(self) -> None:
        values = list(self.template_us)
        if not values:
            raise WorkloadError("arrival trace must not be empty")
        if any(b < a for a, b in zip(values, values[1:])):
            raise WorkloadError("arrival trace timestamps must be sorted")

    def timestamps_us(self, client: int, count: int) -> np.ndarray:
        if count > len(self.template_us):
            raise WorkloadError(
                f"arrival trace has {len(self.template_us)} timestamps "
                f"but client {client} issues {count} operations")
        return np.asarray(self.template_us[:count], dtype=np.float64)


def arrival_schedule(process: ArrivalProcess,
                     op_counts: Sequence[int]) -> List[np.ndarray]:
    """One timestamp array per client, sized to its sealed op count."""
    return [process.timestamps_us(client, count)
            for client, count in enumerate(op_counts)]


def arrival_process_for(spec) -> ArrivalProcess:
    """The arrival process a :class:`~repro.workload.spec.WorkloadSpec`
    asks for (its ``arrival_rate``, seeded by its ``seed``)."""
    if not getattr(spec, "open_loop", False) or spec.arrival_rate is None:
        raise WorkloadError(
            "spec is not open-loop (set open_loop=True and arrival_rate)")
    return PoissonArrivals(rate_per_client=spec.arrival_rate, seed=spec.seed)


__all__ = ["ArrivalProcess", "PoissonArrivals", "TraceArrivals",
           "arrival_schedule", "arrival_process_for"]
