"""Deterministic request generation from a workload specification."""

from __future__ import annotations

import random
from typing import Iterator, List

from .spec import IORequest, WorkloadSpec
from ..errors import WorkloadError
from ..util import round_down


def generate_requests(spec: WorkloadSpec, image_size: int) -> Iterator[IORequest]:
    """Yield the request stream for ``spec`` against an image of ``image_size``.

    Offsets are aligned to the IO size (fio's default behaviour for random
    IO) and never cross the end of the image.  The stream is fully
    deterministic given ``spec.seed``.
    """
    if image_size <= 0:
        raise WorkloadError("image size must be positive")
    count = spec.resolved_io_count(image_size)
    rng = random.Random(spec.seed)
    max_slots = max(1, image_size // spec.io_size)

    sequential_offset = 0
    for index in range(count):
        if spec.rw == "randrw":
            op = "read" if rng.random() < spec.read_fraction else "write"
        elif spec.rw in ("randread", "read"):
            op = "read"
        else:
            op = "write"

        if spec.is_random or spec.rw == "randrw":
            slot = rng.randrange(max_slots)
            offset = slot * spec.io_size
        else:
            offset = sequential_offset
            sequential_offset += spec.io_size
            if sequential_offset + spec.io_size > image_size:
                sequential_offset = 0
        offset = min(offset, round_down(image_size - spec.io_size, spec.io_size))
        yield IORequest(op=op, offset=offset, length=spec.io_size)


def generate_request_list(spec: WorkloadSpec, image_size: int) -> List[IORequest]:
    """Materialize the request stream as a list (small workloads only)."""
    return list(generate_requests(spec, image_size))
