"""LSM-tree key-value store: WAL + memtable + SSTables + compaction.

One :class:`LsmStore` instance backs all OMAP data of one OSD (mirroring
how a single RocksDB instance inside BlueStore serves every object on that
OSD).  Object-scoped namespaces are achieved by key prefixes, which the
RADOS layer manages.

Cost accounting
---------------
Writes charge a fixed per-batch cost, a per-key insert cost and a per-byte
cost to the OSD CPU, plus the WAL append and (amortised) flush/compaction
traffic on the metadata device.  Range reads charge the fixed per-batch
cost and a much smaller per-key cost, reflecting that an iterator scan over
adjacent keys is far cheaper than inserting those keys.  These constants
are what make the paper's OMAP layout attractive for small IOs and
increasingly expensive as the IO size (and therefore the number of keys per
batch) grows — see Fig. 4 and EXPERIMENTS.md E3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .memtable import MemTable
from .sstable import SSTable, merge_tables
from .wal import WriteAheadLog, encode_batch
from ..blockdev.device import SimulatedDisk
from ..errors import KVClosedError
from ..sim.costparams import CostParameters
from ..sim.ledger import CostLedger, RES_OSD_CPU


@dataclass
class KVResult:
    """Values returned by a store operation plus its critical-path latency."""

    items: List[Tuple[bytes, bytes]] = field(default_factory=list)
    latency_us: float = 0.0

    def as_dict(self) -> Dict[bytes, bytes]:
        """The returned key/value pairs as a dictionary."""
        return dict(self.items)


class LsmStore:
    """A small but functional LSM-tree store with simulated costs."""

    def __init__(self, name: str, device: SimulatedDisk,
                 params: Optional[CostParameters] = None,
                 ledger: Optional[CostLedger] = None,
                 memtable_flush_bytes: int = 4 * 1024 * 1024,
                 max_tables_before_compaction: int = 8,
                 wal_region_bytes: int = 32 * 1024 * 1024) -> None:
        self.name = name
        self.params = params or CostParameters()
        self.ledger = ledger
        self._device = device
        self._memtable = MemTable()
        self._tables: List[SSTable] = []      # newest first
        self._flush_threshold = memtable_flush_bytes
        self._max_tables = max_tables_before_compaction
        # The WAL occupies the start of the metadata device; flushed SSTable
        # data is written after it (append-only, compaction rewrites in place).
        self._wal = WriteAheadLog(device, 0, wal_region_bytes)
        self._sst_region = wal_region_bytes
        self._sst_write_pos = wal_region_bytes
        self._closed = False
        self.flush_count = 0
        self.compaction_count = 0

    # -- internals -------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise KVClosedError(f"LSM store {self.name!r} is closed")

    def _charge_cpu(self, microseconds: float, counter: str,
                    amount: float = 1.0) -> None:
        if self.ledger is not None:
            self.ledger.busy(RES_OSD_CPU, microseconds)
            self.ledger.count(counter, amount)

    def _payload_bytes(self, items: List[Tuple[bytes, Optional[bytes]]]) -> int:
        return sum(len(k) + (len(v) if v is not None else 0) for k, v in items)

    def _maybe_flush(self) -> float:
        if self._memtable.approximate_bytes < self._flush_threshold:
            return 0.0
        return self.flush()

    # -- mutations -------------------------------------------------------------

    def put_batch(self, items: List[Tuple[bytes, Optional[bytes]]]) -> KVResult:
        """Atomically apply a batch of puts/deletes (value ``None`` deletes)."""
        self._check_open()
        if not items:
            return KVResult()
        params = self.params
        payload = encode_batch(items)
        wal_latency = self._wal.append(payload)
        for key, value in items:
            self._memtable.put(key, value)

        nbytes = self._payload_bytes(items)
        cpu = (params.omap_op_cost_us
               + params.omap_write_key_cost_us * len(items)
               + params.omap_byte_cost_us_per_kib * nbytes / 1024.0)
        # Amortised flush + compaction write amplification.
        cpu += params.omap_compaction_factor * params.omap_write_key_cost_us * len(items)
        self._charge_cpu(cpu, "omap.keys_written", len(items))
        if self.ledger is not None:
            self.ledger.count("omap.write_batches")
            self.ledger.count("omap.bytes_written", nbytes)
        flush_latency = self._maybe_flush()
        return KVResult(items=[], latency_us=wal_latency + cpu + flush_latency)

    def put(self, key: bytes, value: bytes) -> KVResult:
        """Insert or overwrite a single key."""
        return self.put_batch([(key, value)])

    def delete(self, key: bytes) -> KVResult:
        """Delete a key (tombstone)."""
        return self.put_batch([(key, None)])

    def delete_range(self, start: bytes, end: bytes) -> KVResult:
        """Delete every key in ``[start, end)`` currently visible."""
        existing = [k for k, _ in self.scan(start, end).items]
        if not existing:
            return KVResult()
        return self.put_batch([(k, None) for k in existing])

    # -- reads ------------------------------------------------------------------

    def get(self, key: bytes) -> KVResult:
        """Point lookup; returns zero or one item."""
        self._check_open()
        params = self.params
        cpu = params.omap_op_cost_us + params.omap_read_key_cost_us
        found, value = self._memtable.get(key)
        if not found:
            for table in self._tables:
                found, value = table.get(key)
                if found:
                    break
                cpu += params.omap_read_key_cost_us  # probe one more level
        self._charge_cpu(cpu, "omap.point_lookups")
        items = [(key, value)] if found and value is not None else []
        return KVResult(items=items, latency_us=cpu)

    def get_many(self, keys: List[bytes]) -> KVResult:
        """Multi-key lookup (used for sparse IV reads)."""
        self._check_open()
        params = self.params
        out: List[Tuple[bytes, bytes]] = []
        for key in keys:
            found, value = self._memtable.get(key)
            if not found:
                for table in self._tables:
                    found, value = table.get(key)
                    if found:
                        break
            if found and value is not None:
                out.append((key, value))
        nbytes = sum(len(k) + len(v) for k, v in out)
        cpu = (params.omap_op_cost_us
               + params.omap_read_key_cost_us * max(1, len(keys))
               + params.omap_byte_cost_us_per_kib * nbytes / 1024.0)
        self._charge_cpu(cpu, "omap.keys_read", len(keys))
        if self.ledger is not None:
            self.ledger.count("omap.read_batches")
        return KVResult(items=out, latency_us=cpu)

    def scan(self, start: bytes, end: bytes) -> KVResult:
        """Range scan over ``[start, end)`` merging all levels."""
        self._check_open()
        params = self.params
        merged: Dict[bytes, Optional[bytes]] = {}
        # Oldest table first so newer entries overwrite older ones.
        for table in reversed(self._tables):
            for key, value in table.scan(start, end):
                merged[key] = value
        for key, value in self._memtable.scan(start, end):
            merged[key] = value
        out = [(k, v) for k, v in sorted(merged.items()) if v is not None]
        nbytes = sum(len(k) + len(v) for k, v in out)
        cpu = (params.omap_op_cost_us
               + params.omap_read_key_cost_us * max(1, len(out))
               + params.omap_byte_cost_us_per_kib * nbytes / 1024.0)
        self._charge_cpu(cpu, "omap.keys_read", len(out))
        if self.ledger is not None:
            self.ledger.count("omap.read_batches")
        return KVResult(items=out, latency_us=cpu)

    # -- maintenance --------------------------------------------------------------

    def flush(self) -> float:
        """Flush the memtable into a new SSTable; returns device latency."""
        self._check_open()
        if len(self._memtable) == 0:
            return 0.0
        entries = list(self._memtable.items())
        table = SSTable(entries)
        self._tables.insert(0, table)
        self._memtable.clear()
        self._wal.truncate()
        self.flush_count += 1

        # Write the serialized table sequentially to the metadata device.
        latency = self._write_table(table)
        if self.ledger is not None:
            self.ledger.count("omap.flushes")
        if len(self._tables) > self._max_tables:
            latency += self.compact()
        return latency

    def compact(self) -> float:
        """Merge all SSTables into one, dropping tombstones."""
        self._check_open()
        if len(self._tables) <= 1:
            return 0.0
        merged = merge_tables(self._tables, drop_tombstones=True)
        self._tables = [merged] if len(merged) else []
        self.compaction_count += 1
        latency = self._write_table(merged) if len(merged) else 0.0
        if self.ledger is not None:
            self.ledger.count("omap.compactions")
        return latency

    def _write_table(self, table: SSTable) -> float:
        size = max(table.size_bytes, 1)
        if self._sst_write_pos + size > self._device.capacity_bytes:
            self._sst_write_pos = self._sst_region
        result = self._device.write(self._sst_write_pos, b"\x00" * size)
        self._sst_write_pos += size
        return result.latency_us

    def close(self) -> None:
        """Flush outstanding data and refuse further operations."""
        if not self._closed:
            self.flush()
            self._closed = True

    # -- inspection ----------------------------------------------------------------

    @property
    def table_count(self) -> int:
        """Number of immutable SSTables currently live."""
        return len(self._tables)

    def key_count(self) -> int:
        """Total number of live (non-tombstone) keys visible to readers."""
        return len(self.scan(b"", b"\xff" * 64).items)
