"""Write-ahead log for the LSM store.

Every mutating batch is appended to the log *before* it is applied to the
memtable, exactly like RocksDB's WAL; the append is a sequential write on
the metadata device and is therefore charged to the device cost model.  The
log is truncated whenever the memtable is flushed to an SSTable.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple

from ..blockdev.device import SimulatedDisk
from ..errors import KVStoreError
from ..util import round_up

#: frame marker of one serialized WAL record
WAL_RECORD_MAGIC = b"WAL2"
#: serialized framing per record: magic(4) + payload length(4) + crc32(4)
WAL_FRAME_OVERHEAD = 12


def encode_record(payload: bytes) -> bytes:
    """Frame one record for the on-media log: magic, length, checksum."""
    return b"".join((WAL_RECORD_MAGIC,
                     len(payload).to_bytes(4, "little"),
                     zlib.crc32(payload).to_bytes(4, "little"),
                     payload))


def recover_records(media: bytes) -> Tuple[List[bytes], bool]:
    """Parse framed records from raw log media, tolerating a torn tail.

    Returns ``(payloads, clean)``.  A crash can leave the last frame
    truncated (partial append) or corrupt (checksum mismatch); recovery
    stops *cleanly* at the last complete, checksummed record — it never
    raises — and reports ``clean=False`` when trailing bytes were
    discarded.  Every record before the torn tail is trusted: frames are
    only ever appended, so a valid frame cannot follow an invalid one.
    """
    payloads: List[bytes] = []
    view = memoryview(media)
    pos = 0
    while pos < len(view):
        header = view[pos:pos + WAL_FRAME_OVERHEAD]
        if len(header) < WAL_FRAME_OVERHEAD:
            return payloads, False          # truncated frame header
        if bytes(header[:4]) != WAL_RECORD_MAGIC:
            return payloads, False          # corrupt frame marker
        length = int.from_bytes(header[4:8], "little")
        checksum = int.from_bytes(header[8:12], "little")
        payload = view[pos + WAL_FRAME_OVERHEAD:
                       pos + WAL_FRAME_OVERHEAD + length]
        if len(payload) < length:
            return payloads, False          # truncated payload
        if zlib.crc32(payload) != checksum:
            return payloads, False          # corrupt payload
        payloads.append(bytes(payload))
        pos += WAL_FRAME_OVERHEAD + length
    return payloads, True


class WriteAheadLog:
    """Append-only record log on a region of a simulated device."""

    #: serialized per-record framing overhead (lengths + checksum)
    RECORD_OVERHEAD = 16

    def __init__(self, device: SimulatedDisk, region_offset: int,
                 region_length: int) -> None:
        if region_length <= 0:
            raise KVStoreError("WAL region must have positive length")
        self._device = device
        self._region_offset = region_offset
        self._region_length = region_length
        self._write_pos = 0
        #: records kept in memory for recovery simulation/testing
        self._records: List[bytes] = []

    @property
    def bytes_used(self) -> int:
        """Bytes of the WAL region currently occupied."""
        return self._write_pos

    def append(self, payload: bytes) -> float:
        """Append a record; returns its critical-path latency in microseconds.

        WAL appends are sequential and group-committed: several concurrent
        batches share one device flush (RocksDB/BlueStore behaviour), so the
        per-append device cost is the transfer plus a fraction of one
        operation.  Costs are charged directly to the ledger rather than
        through :meth:`SimulatedDisk.write` so that the tiny appends are not
        mistaken for unaligned data-path writes.
        """
        size = len(payload) + self.RECORD_OVERHEAD
        if self._write_pos + size > self._region_length:
            # Wrap around: in a real store this would force a flush; the LSM
            # store flushes well before this, so wrapping simply reuses space.
            self._write_pos = 0
        self._write_pos = round_up(self._write_pos + size, 64)
        self._records.append(payload)

        params = self._device.params
        transfer = params.device_transfer_us(round_up(size, 512), is_write=True)
        occupancy = (params.device_op_occupancy_us / params.wal_group_commit
                     + transfer)
        latency = (params.device_write_latency_us / params.wal_group_commit
                   + transfer)
        if self._device.ledger is not None:
            from ..sim.ledger import RES_OSD_DEVICE
            self._device.ledger.busy(RES_OSD_DEVICE, occupancy)
            self._device.ledger.count("omap.wal_bytes", size)
        return latency

    def records(self) -> List[bytes]:
        """Records appended since the last truncate (for recovery tests)."""
        return list(self._records)

    def truncate(self) -> None:
        """Discard the log after a successful memtable flush."""
        self._records.clear()
        self._write_pos = 0


def encode_batch(items: List[Tuple[bytes, Optional[bytes]]]) -> bytes:
    """Serialize a write batch into a single WAL payload."""
    parts = [len(items).to_bytes(4, "little")]
    for key, value in items:
        parts.append(len(key).to_bytes(4, "little"))
        parts.append(key)
        if value is None:
            parts.append((0xFFFFFFFF).to_bytes(4, "little"))
        else:
            parts.append(len(value).to_bytes(4, "little"))
            parts.append(value)
    return b"".join(parts)


def decode_batch(payload: bytes) -> List[Tuple[bytes, Optional[bytes]]]:
    """Inverse of :func:`encode_batch` (used by recovery tests)."""
    count = int.from_bytes(payload[:4], "little")
    pos = 4
    items: List[Tuple[bytes, Optional[bytes]]] = []
    for _ in range(count):
        klen = int.from_bytes(payload[pos:pos + 4], "little")
        pos += 4
        key = payload[pos:pos + klen]
        pos += klen
        vlen = int.from_bytes(payload[pos:pos + 4], "little")
        pos += 4
        if vlen == 0xFFFFFFFF:
            items.append((key, None))
        else:
            items.append((key, payload[pos:pos + vlen]))
            pos += vlen
    return items
