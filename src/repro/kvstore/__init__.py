"""Embedded LSM-tree key-value store — the reproduction's stand-in for the
RocksDB instance that backs Ceph's per-object OMAP metadata.

The paper's third layout ("OMAP") stores each sector's IV in this database,
keyed by the block's offset within its object, and relies on range
operations so that a contiguous IO touches the database once.  The store is
fully functional (write-ahead log, sorted memtable, immutable sorted runs,
background-style compaction) and charges realistic costs: a fixed per-batch
cost, a per-key write cost, a much cheaper per-key range-read cost, and the
device traffic of its WAL and flushes.
"""

from .lsm import KVResult, LsmStore
from .memtable import MemTable
from .sstable import SSTable
from .wal import WriteAheadLog

__all__ = ["LsmStore", "KVResult", "MemTable", "SSTable", "WriteAheadLog"]
