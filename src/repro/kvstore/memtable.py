"""In-memory sorted write buffer (memtable) for the LSM store."""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

#: Sentinel stored for deleted keys until compaction drops them.
TOMBSTONE = None


class MemTable:
    """Sorted mutable buffer of key/value pairs.

    Keys are ``bytes``; values are ``bytes`` or ``None`` (tombstone).  The
    structure keeps a parallel sorted key list so range scans are cheap,
    mirroring a skiplist-based memtable.
    """

    def __init__(self) -> None:
        self._data: Dict[bytes, Optional[bytes]] = {}
        self._sorted_keys: List[bytes] = []
        self.approximate_bytes = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def put(self, key: bytes, value: Optional[bytes]) -> None:
        """Insert or overwrite ``key`` (``None`` value records a delete)."""
        if key not in self._data:
            bisect.insort(self._sorted_keys, key)
            self.approximate_bytes += len(key)
        else:
            old = self._data[key]
            self.approximate_bytes -= len(old) if old is not None else 0
        self._data[key] = value
        self.approximate_bytes += len(value) if value is not None else 0

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Return ``(found, value)``; a found tombstone yields ``(True, None)``."""
        if key in self._data:
            return True, self._data[key]
        return False, None

    def scan(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Yield entries with ``start <= key < end`` in key order."""
        lo = bisect.bisect_left(self._sorted_keys, start)
        hi = bisect.bisect_left(self._sorted_keys, end)
        for key in self._sorted_keys[lo:hi]:
            yield key, self._data[key]

    def items(self) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Yield all entries in key order (used when flushing to an SSTable)."""
        for key in self._sorted_keys:
            yield key, self._data[key]

    def clear(self) -> None:
        """Drop all entries (after a successful flush)."""
        self._data.clear()
        self._sorted_keys.clear()
        self.approximate_bytes = 0
