"""Immutable sorted runs (SSTables) for the LSM store."""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple


class SSTable:
    """An immutable, sorted list of key/value pairs produced by a flush.

    Values of ``None`` are tombstones and shadow older tables during reads;
    they are dropped when a compaction merges the oldest level.
    """

    _counter = 0

    def __init__(self, entries: List[Tuple[bytes, Optional[bytes]]]) -> None:
        keys = [k for k, _ in entries]
        if keys != sorted(keys):
            raise ValueError("SSTable entries must be sorted by key")
        if len(set(keys)) != len(keys):
            raise ValueError("SSTable entries must have unique keys")
        self._keys = keys
        self._values = [v for _, v in entries]
        SSTable._counter += 1
        self.table_id = SSTable._counter

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def size_bytes(self) -> int:
        """Approximate serialized size (keys + values)."""
        return (sum(len(k) for k in self._keys)
                + sum(len(v) for v in self._values if v is not None))

    @property
    def key_range(self) -> Tuple[Optional[bytes], Optional[bytes]]:
        """Smallest and largest key (``(None, None)`` for an empty table)."""
        if not self._keys:
            return None, None
        return self._keys[0], self._keys[-1]

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Binary-search lookup; returns ``(found, value_or_tombstone)``."""
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            return True, self._values[idx]
        return False, None

    def scan(self, start: bytes, end: bytes) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Yield entries with ``start <= key < end`` in key order."""
        lo = bisect.bisect_left(self._keys, start)
        hi = bisect.bisect_left(self._keys, end)
        for i in range(lo, hi):
            yield self._keys[i], self._values[i]

    def items(self) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Yield every entry in key order."""
        return iter(zip(self._keys, self._values))


def merge_tables(tables: List[SSTable], drop_tombstones: bool) -> SSTable:
    """Merge SSTables (newest first) into one, optionally dropping tombstones."""
    merged: dict = {}
    # Iterate oldest -> newest so newer entries overwrite older ones.
    for table in reversed(tables):
        for key, value in table.items():
            merged[key] = value
    entries = []
    for key in sorted(merged):
        value = merged[key]
        if value is None and drop_tombstones:
            continue
        entries.append((key, value))
    return SSTable(entries)
