"""Command-line interface: run the paper's experiments from a shell.

Usage (module form, no install step needed beyond ``pip install -e .``)::

    python -m repro.cli sweep --kind write --sizes 4K,64K,1M
    python -m repro.cli sweep --kind read  --layouts luks-baseline,object-end
    python -m repro.cli sectors --sizes 4K,32K,256K,4M
    python -m repro.cli demo

Subcommands
-----------
``sweep``
    Run the Fig. 3 / Fig. 4 layout comparison for a chosen IO-size sweep and
    print the bandwidth and overhead tables (optionally CSV).
``sectors``
    Print the §3.3 analytic sector-access table.
``fleet``
    Fleet-scale open-loop simulation: capture a short real trace, tile it
    out to ``--num-clients`` streams, and replay millions of requests
    through the vectorized event engine in seconds, e.g.::

        python -m repro.cli fleet --open-loop --arrival-rate 200 \
            --num-clients 1000 --ops-per-client 1000
``crash``
    Crash/fault-injection harness: kill the client at a named pipeline
    stage (or all of them), recover from the surviving durable state and
    check prefix-consistent recovery of every acked write, e.g.::

        python -m repro.cli crash --fault-stage post-ack-pre-drain \
            --fault-seed 12345

    The seed defaults to the ``FAULT_SEED`` environment variable (or a
    fresh random one) and is always printed, so any failing run can be
    replayed exactly.
``failure-drill``
    OSD failure lifecycle: kill storage daemons mid-workload (primary or
    replica mid-transaction, or during backfill), serve degraded I/O
    through retry/failover, rebuild, and check that no acked write was
    lost and every replica set ends consistent, e.g.::

        python -m repro.cli failure-drill --fault-stage kill-primary-mid-txn \
            --osds 100 --fault-seed 12345
``demo``
    A tiny end-to-end demonstration (create an encrypted image, write, read,
    snapshot) printing the cluster's cost-ledger highlights.

The global ``--profile`` flag (before the subcommand) runs any of the above
under :mod:`cProfile` and prints the top-20 cumulative-time functions, so
performance work starts from measured hot spots rather than guesses.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import api
from .analysis.overhead import LayoutSweep, PAPER_LAYOUTS, SweepConfig
from .analysis.report import (format_bandwidth_table, format_cache_table,
                              format_latency_table, format_metrics_table,
                              format_overhead_table, format_pwl_table, to_csv)
from .analysis.sectors import SectorAccessModel, theoretical_overhead_table
from .cache.config import CACHE_MODES, CACHE_POLICIES
from .sim.costparams import EVENT_ENGINES, SIM_MODES
from .util import MIB, format_size, parse_size
from .workload.spec import PAPER_IO_SIZES


def _parse_sizes(text: Optional[str]) -> Sequence[int]:
    if not text:
        return PAPER_IO_SIZES
    return tuple(parse_size(part) for part in text.split(",") if part)


def _parse_layouts(text: Optional[str]) -> Sequence[str]:
    if not text:
        return PAPER_LAYOUTS
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _make_tracer(args: argparse.Namespace):
    """A SpanTracer when ``--trace-out`` was passed, else None."""
    if not getattr(args, "trace_out", None):
        return None
    from .obs import SpanTracer
    return SpanTracer()


def _write_trace(args: argparse.Namespace, tracer) -> None:
    """Write the Perfetto-loadable Chrome trace next to the run output."""
    if tracer is None:
        return
    from .obs import write_chrome_trace
    write_chrome_trace(args.trace_out, tracer)
    note = (f" ({tracer.dropped} spans dropped past the retention cap)"
            if tracer.dropped else "")
    print(f"trace: {len(tracer.spans)} spans -> {args.trace_out} "
          f"(load in https://ui.perfetto.dev){note}")


def _write_metrics(args: argparse.Namespace, registry) -> None:
    """Write the Prometheus exposition and print the drill-down table."""
    if registry is None or not getattr(args, "metrics_out", None):
        return
    from .obs import write_prometheus
    write_prometheus(args.metrics_out, registry)
    print()
    print(format_metrics_table(registry, limit=40))
    print(f"metrics: Prometheus exposition -> {args.metrics_out}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.batch_size is not None and not args.batched:
        raise SystemExit("--batch-size only takes effect with --batched")
    if args.num_clients < 1:
        raise SystemExit("--num-clients must be positive")
    if args.cache_mode is None and (args.cache_size or args.readahead
                                    or args.cache_policy != "lru"):
        raise SystemExit("--cache-size/--readahead/--cache-policy only take "
                         "effect with --cache-mode")
    clone_depth = args.clone_depth
    if clone_depth is None:
        clone_depth = 1 if args.clone_of else 0
    if clone_depth < 0:
        raise SystemExit("--clone-depth must be >= 0")
    if args.clone_of and clone_depth == 0:
        raise SystemExit("--clone-of requires --clone-depth >= 1")
    if args.flatten and clone_depth == 0:
        raise SystemExit("--flatten only takes effect with "
                         "--clone-of/--clone-depth")
    if args.open_loop and args.arrival_rate is None:
        raise SystemExit("--open-loop needs --arrival-rate (ops/s)")
    if args.arrival_rate is not None and not args.open_loop:
        raise SystemExit("--arrival-rate only takes effect with --open-loop")
    pool_ec = None
    if args.pool_ec:
        from .errors import ConfigurationError
        from .rados.ec import EcProfile
        try:
            profile = EcProfile.parse(args.pool_ec)
        except ConfigurationError as exc:
            raise SystemExit(str(exc))
        if args.osds < profile.total:
            raise SystemExit(f"--pool-ec {args.pool_ec} needs --osds >= "
                             f"{profile.total}")
        pool_ec = (profile.k, profile.m)
    config = SweepConfig(
        io_sizes=_parse_sizes(args.sizes),
        layouts=_parse_layouts(args.layouts),
        image_size=parse_size(args.image_size),
        bytes_per_point=parse_size(args.bytes_per_point),
        queue_depth=args.queue_depth,
        osd_count=args.osds,
        replica_count=args.replicas,
        journaled=args.journaled,
        batched=args.batched,
        batch_size=args.batch_size,
        sim_mode=args.sim_mode,
        num_clients=args.num_clients,
        open_loop=args.open_loop,
        arrival_rate=args.arrival_rate,
        event_engine=args.event_engine,
        sim_shards=args.shards,
        sim_jobs=args.jobs,
        cache_mode=args.cache_mode,
        cache_size=(parse_size(args.cache_size) if args.cache_size else None),
        cache_policy=args.cache_policy,
        readahead=args.readahead,
        clone_depth=clone_depth,
        clone_of=args.clone_of or "golden",
        flatten=args.flatten,
        pool_ec=pool_ec,
    )
    tracer = _make_tracer(args)
    results = LayoutSweep(config, tracer=tracer).run(args.kind)
    print(format_bandwidth_table(results))
    print()
    if "luks-baseline" in results.layouts():
        print(format_overhead_table(results))
    latency_table = format_latency_table(results)
    if latency_table:
        print()
        print(latency_table)
    cache_table = format_cache_table(results)
    if cache_table:
        print()
        print(cache_table)
    pwl_table = format_pwl_table(results)
    if pwl_table:
        print()
        print(pwl_table)
    if args.csv:
        print()
        print(to_csv(results))
    _write_trace(args, tracer)
    if args.metrics_out:
        from .obs import registry_from_counters
        registry = None
        for layout in results.layouts():
            for io_size in results.io_sizes():
                point = results.result(layout, io_size)
                registry = registry_from_counters(
                    point.counters, registry,
                    layout=layout, io_size=format_size(io_size))
                registry.gauge(
                    "sweep_bandwidth_mibps",
                    "simulated bandwidth of one sweep point").labels(
                        layout=layout,
                        io_size=format_size(io_size)).set(
                            point.bandwidth_mbps)
        _write_metrics(args, registry)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import time

    from .crypto.suite import SIMULATION_SUITE
    from .sim.compact import encode_stream
    from .sim.costparams import default_cost_parameters
    from .sim.fleet import fleet_streams_from_template, simulate_fleet
    from .workload.arrival import PoissonArrivals, arrival_schedule
    from .workload.runner import capture_template_stream, prefill_image
    from .workload.spec import WorkloadSpec

    if args.num_clients < 1 or args.ops_per_client < 1:
        raise SystemExit("--num-clients/--ops-per-client must be positive")
    if args.arrival_rate <= 0:
        raise SystemExit("--arrival-rate must be positive")
    params = default_cost_parameters().with_overrides(
        sim_mode="events", event_engine=args.event_engine,
        sim_shards=args.shards, sim_jobs=args.jobs,
        osd_count=args.osds, replica_count=args.replicas)

    # Capture a short real trace: actual data path, crypto and placement.
    cluster = api.make_cluster(osd_count=args.osds,
                               replica_count=args.replicas, params=params)
    image, info = api.create_encrypted_image(
        cluster, "fleet-template", 32 * MIB, passphrase=b"fleet-template",
        encryption_format=args.layout, cipher_suite=SIMULATION_SUITE)
    spec = WorkloadSpec(
        name="fleet-template",
        rw="randread" if args.kind == "read" else "randwrite",
        io_size=parse_size(args.io_size), queue_depth=1,
        io_count=args.template_ops, seed=args.seed)
    if args.kind == "read":
        prefill_image(image)
    template = encode_stream(capture_template_stream(cluster, image, spec))

    # Tile it out to the fleet and replay open-loop.
    streams = fleet_streams_from_template(
        template, args.num_clients, args.ops_per_client,
        osd_count=args.osds)
    arrivals = arrival_schedule(
        PoissonArrivals(rate_per_client=args.arrival_rate, seed=args.seed),
        [stream.num_ops for stream in streams])
    tracer = _make_tracer(args)
    started = time.perf_counter()
    result = simulate_fleet(params, streams, arrivals, tracer=tracer)
    wall_s = time.perf_counter() - started

    stats = result.request_stats
    elapsed_s = result.elapsed_us / 1e6
    pcts = stats.percentiles()
    print(f"fleet: {args.num_clients} clients x {args.ops_per_client} ops "
          f"({args.kind} {format_size(spec.io_size)}, layout={info.layout}, "
          f"{args.osds} OSDs, engine={result.engine}, "
          f"shards={args.shards})")
    print(f"  requests    {result.requests:>12d} "
          f"({result.events_processed} simulated events)")
    print(f"  simulated   {elapsed_s:>12.2f} s   "
          f"({result.requests / elapsed_s:,.0f} IOPS aggregate, "
          f"bound={result.bounding_resource})")
    print(f"  latency     mean={stats.mean_us:.0f} us  "
          f"p50={pcts['p50']:.0f}  p95={pcts['p95']:.0f}  "
          f"p99={pcts['p99']:.0f} us"
          f"{'  (sampled)' if stats.sampled else ''}")
    print(f"  wall clock  {wall_s:>12.2f} s   "
          f"({result.requests / max(wall_s, 1e-9):,.0f} requests/s replayed)")
    _write_trace(args, tracer)
    if args.metrics_out:
        from .obs import registry_from_sim
        registry = registry_from_sim(result, kind=args.kind)
        _write_metrics(args, registry)
    return 0


def _cmd_crash(args: argparse.Namespace) -> int:
    import os
    import random

    from .faults.plan import ALL_STAGES
    from .faults.scenarios import run_crash_scenario

    if args.io_count < 1:
        raise SystemExit("--io-count must be positive")
    seed = args.fault_seed
    if seed is None:
        env_seed = os.environ.get("FAULT_SEED", "").strip()
        seed = int(env_seed) if env_seed else random.SystemRandom().randrange(2 ** 32)
    stages = ALL_STAGES if args.fault_stage == "all" else (args.fault_stage,)
    print(f"FAULT_SEED={seed}  "
          f"(rerun: repro crash --fault-seed {seed}"
          + (f" --fault-stage {args.fault_stage}"
             if args.fault_stage != "all" else "") + ")")
    failures = 0
    registry = None
    for stage in stages:
        result = run_crash_scenario(stage, seed, io_count=args.io_count)
        print(f"  {stage:24s} {result.summary()}")
        failures += 0 if result.ok else 1
        if args.metrics_out:
            from .obs import registry_from_counters
            registry = registry_from_counters(result.counters, registry,
                                              stage=stage)
    _write_metrics(args, registry)
    if failures:
        print(f"{failures} of {len(stages)} crash stage(s) FAILED "
              f"(seed {seed})")
        return 1
    print(f"all {len(stages)} crash stage(s) recovered prefix-consistently")
    return 0


def _cmd_failure_drill(args: argparse.Namespace) -> int:
    import os
    import random

    from .errors import ConfigurationError
    from .faults.drill import run_failure_drill
    from .faults.plan import EC_KILL_STAGES, REPLICATED_KILL_STAGES
    from .rados.ec import EcProfile

    if args.osds < 3:
        raise SystemExit("--osds must be >= 3 (three-way replication)")
    pool_ec = None
    if args.pool_ec:
        try:
            profile = EcProfile.parse(args.pool_ec)
        except ConfigurationError as exc:
            raise SystemExit(str(exc))
        pool_ec = (profile.k, profile.m)
    seed = args.fault_seed
    if seed is None:
        env_seed = os.environ.get("FAULT_SEED", "").strip()
        seed = int(env_seed) if env_seed else random.SystemRandom().randrange(2 ** 32)
    if args.fault_stage == "all":
        stages = EC_KILL_STAGES if pool_ec else REPLICATED_KILL_STAGES
    else:
        stages = (args.fault_stage,)
    print(f"FAULT_SEED={seed}  "
          f"(rerun: repro failure-drill --fault-seed {seed}"
          + (f" --fault-stage {args.fault_stage}"
             if args.fault_stage != "all" else "")
          + (f" --pool-ec {args.pool_ec}" if args.pool_ec else "")
          + f" --osds {args.osds})")
    failures = 0
    registry = None
    tracer = _make_tracer(args)
    for stage in stages:
        if tracer is not None:
            tracer.begin_process(stage)
        result = run_failure_drill(stage, seed, osd_count=args.osds,
                                   image_size=parse_size(args.image_size),
                                   pool_ec=pool_ec, tracer=tracer)
        print(f"  {stage:24s} {result.summary()}")
        failures += 0 if result.ok else 1
        if args.metrics_out:
            from .obs import registry_from_counters
            registry = registry_from_counters(result.counters, registry,
                                              stage=stage)
    _write_trace(args, tracer)
    _write_metrics(args, registry)
    if failures:
        print(f"{failures} of {len(stages)} failure stage(s) FAILED "
              f"(seed {seed})")
        return 1
    print(f"all {len(stages)} failure stage(s) recovered: no acked write "
          f"lost, replicas consistent")
    return 0


def _cmd_sectors(args: argparse.Namespace) -> int:
    model = SectorAccessModel(block_size=parse_size(args.block_size),
                              metadata_size=args.metadata_size)
    rows = theoretical_overhead_table(_parse_sizes(args.sizes), model)
    print("theoretical minimum sector accesses per IO (paper §3.3):")
    for row in rows:
        print(f"  {format_size(int(row['io_size'])):>9s}: baseline "
              f"{row['baseline_sectors']:>5.0f}  object-end "
              f"{row['object_end_sectors']:>5.0f} "
              f"(+{row['object_end_overhead_pct']:.1f}%)  unaligned "
              f"{row['unaligned_sectors']:>5.0f} "
              f"(+{row['unaligned_overhead_pct']:.1f}%)  omap-keys "
              f"{row['omap_keys']:.0f}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    cluster = api.make_cluster(osd_count=args.osds, replica_count=args.replicas)
    image, info = api.create_encrypted_image(
        cluster, "cli-demo", 32 * MIB, passphrase=b"cli-demo",
        encryption_format=args.layout, cipher_suite="blake2-xts-sim")
    image.write(0, b"written through the CLI demo")
    image.create_snapshot("before")
    image.write(0, b"WRITTEN THROUGH THE CLI DEMO")
    image.set_read_snapshot("before")
    snapshot_view = image.read(0, 28)
    image.set_read_snapshot(None)
    print(f"image: {image.name} ({format_size(image.size)}), layout={info.layout}, "
          f"codec={info.codec}, iv={info.iv_policy}")
    print(f"head     reads: {image.read(0, 28)!r}")
    print(f"snapshot reads: {snapshot_view!r}")
    print("ledger highlights:")
    for counter in ("device.ops", "device.sectors_written", "omap.keys_written",
                    "rados.transactions", "crypto.blocks"):
        print(f"  {counter:26s} {cluster.ledger.counter(counter):10.0f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Reproduction of 'Rethinking Block Storage "
        "Encryption with Virtual Disks' (HotStorage'22)")
    parser.add_argument("--profile", action="store_true",
                        help="run the command under cProfile and print the "
                        "top-20 cumulative-time functions (place before the "
                        "subcommand, e.g. 'repro --profile sweep ...')")
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run the Fig.3/Fig.4 layout comparison")
    sweep.add_argument("--kind", choices=("read", "write"), default="write")
    sweep.add_argument("--sizes", help="comma-separated IO sizes (e.g. 4K,64K,1M)")
    sweep.add_argument("--layouts", help="comma-separated layouts "
                       f"(default: {','.join(PAPER_LAYOUTS)})")
    sweep.add_argument("--image-size", default="32M")
    sweep.add_argument("--bytes-per-point", default="8M")
    sweep.add_argument("--queue-depth", type=int, default=32)
    sweep.add_argument("--osds", type=int, default=3)
    sweep.add_argument("--replicas", type=int, default=3)
    sweep.add_argument("--journaled", action="store_true",
                       help="use journal-based consistency (ablation A1)")
    sweep.add_argument("--batched", action="store_true",
                       help="drive IO through the batched engine: up to "
                       "--queue-depth requests coalesce into one RADOS "
                       "transaction per object")
    sweep.add_argument("--batch-size", type=int, default=None,
                       help="cap on blocks per object per engine window")
    sweep.add_argument("--sim-mode", choices=SIM_MODES, default="analytic",
                       help="performance model: 'analytic' is the closed-"
                       "form two-bound fast path; 'events' replays the run "
                       "through the discrete-event engine (per-OSD FIFO "
                       "queues, replication fan-out, real queue waiting)")
    sweep.add_argument("--num-clients", type=int, default=1,
                       help="independent client streams per point, all "
                       "contending for one cluster (contention needs "
                       "--sim-mode events to be visible)")
    sweep.add_argument("--open-loop", action="store_true",
                       help="issue operations at Poisson arrival times "
                       "(--arrival-rate) instead of the closed queue-depth "
                       "loop; needs --sim-mode events")
    sweep.add_argument("--arrival-rate", type=float, default=None,
                       metavar="OPS_PER_SEC",
                       help="per-client open-loop arrival rate (ops/s)")
    sweep.add_argument("--event-engine", choices=EVENT_ENGINES, default=None,
                       help="event-replay implementation: 'compact' "
                       "(flattened numpy traces, vectorized open loop — the "
                       "default) or 'legacy' (original per-op scheduler)")
    sweep.add_argument("--shards", type=int, default=None,
                       help="independent contention domains of the event "
                       "replay (clients and their OSD queues partitioned)")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes advancing shards in parallel "
                       "(results are identical for any value)")
    sweep.add_argument("--cache-mode", choices=CACHE_MODES, default=None,
                       help="client-side cache: 'writethrough' keeps the "
                       "RADOS write stream identical and absorbs reads; "
                       "'writeback' also coalesces dirty blocks into the "
                       "multi-block transaction path; 'pwl' acks writes "
                       "after a crash-safe persistent-log append and drains "
                       "in order")
    sweep.add_argument("--cache-size", default=None,
                       help="cache capacity per client (e.g. 8M; default "
                       "from repro.cache)")
    sweep.add_argument("--readahead", type=int, default=0,
                       help="max blocks of sequential-read prefetch "
                       "(0 = off)")
    sweep.add_argument("--cache-policy", choices=CACHE_POLICIES,
                       default="lru", help="cache eviction policy")
    sweep.add_argument("--clone-of", default=None, metavar="NAME",
                       help="run every sweep image as a COW clone of one "
                       "prefilled golden image of this name (implies "
                       "--clone-depth 1): reads descend the layered chain, "
                       "first writes pay librbd-style copyup, and every "
                       "layer carries its own encryption key")
    sweep.add_argument("--clone-depth", type=int, default=None,
                       help="layers between each image and the golden "
                       "parent (>= 1; requires or implies --clone-of)")
    sweep.add_argument("--flatten", action="store_true",
                       help="flatten every clone before measuring (control "
                       "run: a flattened clone performs like a standalone "
                       "image)")
    sweep.add_argument("--pool-ec", default=None, metavar="K,M",
                       help="store image data in an erasure-coded pool of "
                       "K data + M parity chunks (e.g. 4,2) instead of "
                       "3-way replication; needs --osds >= K+M")
    sweep.add_argument("--csv", action="store_true")
    sweep.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a Prometheus text exposition of the "
                       "sweep's ledger counters (labeled by layout and "
                       "io_size) and print the metrics drill-down table")
    sweep.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Perfetto-loadable Chrome trace of "
                       "per-op spans (client op -> RADOS op -> crypto/"
                       "dispatch -> per-OSD visit); open at "
                       "https://ui.perfetto.dev")
    sweep.set_defaults(func=_cmd_sweep)

    fleet = sub.add_parser(
        "fleet", help="fleet-scale open-loop simulation (capture a short "
        "real trace, tile it to --num-clients streams, replay vectorized)")
    fleet.add_argument("--num-clients", type=int, default=1000)
    fleet.add_argument("--ops-per-client", type=int, default=1000)
    fleet.add_argument("--open-loop", action="store_true", default=True,
                       help="accepted for symmetry with sweep; the fleet "
                       "replay is always open-loop")
    fleet.add_argument("--arrival-rate", type=float, default=200.0,
                       metavar="OPS_PER_SEC",
                       help="per-client Poisson arrival rate (ops/s)")
    fleet.add_argument("--kind", choices=("read", "write"), default="write")
    fleet.add_argument("--io-size", default="4K")
    fleet.add_argument("--layout", default="object-end")
    fleet.add_argument("--osds", type=int, default=64,
                       help="cluster size the fleet spreads over")
    fleet.add_argument("--replicas", type=int, default=3)
    fleet.add_argument("--template-ops", type=int, default=32,
                       help="length of the captured template trace that is "
                       "tiled out to every client")
    fleet.add_argument("--shards", type=int, default=1)
    fleet.add_argument("--jobs", type=int, default=1)
    fleet.add_argument("--event-engine", choices=EVENT_ENGINES,
                       default="compact")
    fleet.add_argument("--seed", type=int, default=1234)
    fleet.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a Prometheus text exposition of the "
                       "replay (elapsed, requests, latency histogram and "
                       "percentiles, queue waits)")
    fleet.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Perfetto-loadable Chrome trace of "
                       "per-op spans; forces the exact index-machine "
                       "engine on a single shard (spans carry every "
                       "event's sim-clock times)")
    fleet.set_defaults(func=_cmd_fleet)

    from .faults.plan import ALL_STAGES
    crash = sub.add_parser(
        "crash", help="kill the client at a named pipeline stage and check "
        "prefix-consistent crash recovery (the CI crash matrix entry point)")
    crash.add_argument("--fault-stage", choices=ALL_STAGES + ("all",),
                       default="all",
                       help="pipeline stage to kill at (default: all stages)")
    crash.add_argument("--fault-seed", type=int, default=None,
                       help="seed of the fault plan and workload; defaults "
                       "to the FAULT_SEED environment variable or a fresh "
                       "random seed — always printed for exact replay")
    crash.add_argument("--io-count", type=int, default=24,
                       help="writes issued before/while the fault fires")
    crash.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a Prometheus text exposition of each "
                       "scenario's ledger counters, labeled by stage")
    crash.set_defaults(func=_cmd_crash)

    from .faults.plan import OSD_KILL_STAGES
    drill = sub.add_parser(
        "failure-drill", help="kill OSD daemons mid-workload and check the "
        "failure lifecycle: degraded I/O, retry/failover, backfill back to "
        "healthy (the CI failure matrix entry point)")
    drill.add_argument("--fault-stage", choices=OSD_KILL_STAGES + ("all",),
                       default="all",
                       help="where the daemon kill lands (default: all)")
    drill.add_argument("--fault-seed", type=int, default=None,
                       help="seed of the kill plan and workload; defaults "
                       "to the FAULT_SEED environment variable or a fresh "
                       "random seed — always printed for exact replay")
    drill.add_argument("--osds", type=int, default=100,
                       help="cluster size of the drill (host failure "
                       "domains, four OSDs per host)")
    drill.add_argument("--image-size", default="8M",
                       help="size of the encrypted drill image")
    drill.add_argument("--pool-ec", default=None, metavar="K,M",
                       help="run the drill against an erasure-coded pool "
                       "of K data + M parity chunks (e.g. 4,2) instead of "
                       "the replicated pool; '--fault-stage all' then "
                       "covers the EC kill stages")
    drill.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write a Prometheus text exposition of each "
                       "drill's ledger counters, labeled by stage")
    drill.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a Perfetto-loadable Chrome trace of "
                       "the rebuild-storm replay: degraded client ops, "
                       "backoff retries and backfill/ec-repair pushes on "
                       "distinct tracks, one process group per stage")
    drill.set_defaults(func=_cmd_failure_drill)

    sectors = sub.add_parser("sectors", help="print the analytic sector table")
    sectors.add_argument("--sizes")
    sectors.add_argument("--block-size", default="4K")
    sectors.add_argument("--metadata-size", type=int, default=16)
    sectors.set_defaults(func=_cmd_sectors)

    demo = sub.add_parser("demo", help="tiny end-to-end demonstration")
    demo.add_argument("--layout", default="object-end")
    demo.add_argument("--osds", type=int, default=3)
    demo.add_argument("--replicas", type=int, default=3)
    demo.set_defaults(func=_cmd_demo)
    return parser


def _run_profiled(args: argparse.Namespace) -> int:
    """Run the selected subcommand under cProfile and print a hot-spot
    summary (top-20 by cumulative time) so perf work starts from data."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    exit_code = profiler.runcall(args.func, args)
    print()
    print("profile (top 20 by cumulative time):")
    pstats.Stats(profiler, stream=sys.stdout) \
        .strip_dirs().sort_stats("cumulative").print_stats(20)
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.profile:
        return _run_profiled(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
