"""IO trace recording for debugging and for the examples.

A trace is a bounded in-memory list of :class:`TraceRecord` entries; it can
be rendered as text or summarised.  Traces are optional — benchmarks do not
enable them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One device-level IO."""

    op: str
    device: str
    offset: int
    length: int
    sectors: int

    def render(self) -> str:
        """Render as a single human-readable line."""
        return (f"{self.op:5s} {self.device:16s} off={self.offset:>12d} "
                f"len={self.length:>9d} sectors={self.sectors}")


class IOTrace:
    """Bounded in-memory IO trace."""

    def __init__(self, limit: int = 100_000) -> None:
        if limit <= 0:
            raise ValueError("trace limit must be positive")
        self._limit = limit
        self._records: List[TraceRecord] = []
        self.dropped = 0

    def record(self, op: str, device: str, offset: int, length: int,
               sectors: int) -> None:
        """Append a record (drops silently past the limit, counting drops)."""
        if len(self._records) >= self._limit:
            self.dropped += 1
            return
        self._records.append(TraceRecord(op, device, offset, length, sectors))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(self, op: Optional[str] = None,
               device: Optional[str] = None) -> List[TraceRecord]:
        """Return records matching the given op and/or device name."""
        out = []
        for rec in self._records:
            if op is not None and rec.op != op:
                continue
            if device is not None and rec.device != device:
                continue
            out.append(rec)
        return out

    def render(self, limit: int = 50) -> str:
        """Render up to ``limit`` records as text."""
        lines = [rec.render() for rec in self._records[:limit]]
        if len(self._records) > limit:
            lines.append(f"... {len(self._records) - limit} more records")
        return "\n".join(lines)
