"""Simulated sector-granular block devices (the NVMe drives behind each OSD).

The devices store real bytes (so the whole stack round-trips data
faithfully) and account every access in the cost ledger: number of device
operations, sectors transferred, unaligned accesses and the resulting
read-modify-write turns — the quantities the paper's §3.3 analysis is built
on.
"""

from .device import DeviceStats, SimulatedDisk
from .trace import IOTrace, TraceRecord

__all__ = ["SimulatedDisk", "DeviceStats", "IOTrace", "TraceRecord"]
