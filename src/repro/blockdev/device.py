"""A simulated NVMe-like block device with sector-granular cost accounting.

The device is sparse (unwritten sectors read back as zeros), stores real
bytes, and charges every access to the cost ledger:

* a fixed per-operation cost (submission/completion, flash translation),
* a transfer cost proportional to the number of *sectors* touched — not the
  number of bytes the caller asked for: a 20-byte read still occupies a
  whole 4 KiB sector, which is exactly the effect behind the paper's
  "2 sectors instead of 1" analysis for 4 KiB IOs with a trailing IV,
* a read-modify-write penalty when a write does not start and end on a
  sector boundary (the device must read the partial head/tail sectors, merge
  and write them back) — the effect that makes the *unaligned* layout slow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .trace import IOTrace
from ..errors import OutOfRangeError
from ..sim.costparams import CostParameters
from ..sim.ledger import CostLedger, RES_OSD_DEVICE
from ..util import ceil_div


@dataclass
class DeviceStats:
    """Raw access statistics for a single simulated device."""

    read_ops: int = 0
    write_ops: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    unaligned_writes: int = 0
    rmw_sectors_read: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    flushes: int = 0
    discards: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the statistics as a plain dictionary (for reports)."""
        return dict(self.__dict__)


class SimulatedDisk:
    """Sparse in-memory block device with a sector-granularity cost model.

    Parameters
    ----------
    name:
        Identifier used in traces and error messages (e.g. ``"osd.2/nvme0"``).
    capacity_bytes:
        Device size; IOs beyond it raise :class:`OutOfRangeError`.
    params:
        Cost parameters (sector size, per-op and per-byte costs).
    ledger:
        Shared cost ledger; may be ``None`` for purely functional use.
    trace:
        Optional :class:`IOTrace` receiving one record per operation.
    """

    def __init__(self, name: str, capacity_bytes: int,
                 params: Optional[CostParameters] = None,
                 ledger: Optional[CostLedger] = None,
                 trace: Optional[IOTrace] = None) -> None:
        if capacity_bytes <= 0:
            raise OutOfRangeError("device capacity must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.params = params or CostParameters()
        self.sector_size = self.params.sector_size
        self.ledger = ledger
        self.trace = trace
        self.stats = DeviceStats()
        self._sectors: Dict[int, bytes] = {}

    # -- helpers ---------------------------------------------------------------

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise OutOfRangeError(
                f"{self.name}: negative offset/length ({offset}, {length})")
        if offset + length > self.capacity_bytes:
            raise OutOfRangeError(
                f"{self.name}: IO [{offset}, {offset + length}) exceeds "
                f"capacity {self.capacity_bytes}")

    def _sector_span(self, offset: int, length: int) -> range:
        first = offset // self.sector_size
        last = ceil_div(offset + length, self.sector_size)
        return range(first, last)

    def _charge(self, is_write: bool, sectors: int, rmw_sectors: int) -> float:
        """Charge occupancy to the ledger and return critical-path latency."""
        params = self.params
        transfer = params.device_transfer_us(sectors * self.sector_size, is_write)
        occupancy = params.device_op_occupancy_us + transfer
        latency = (params.device_write_latency_us if is_write
                   else params.device_read_latency_us) + transfer
        if rmw_sectors:
            rmw_read = params.device_transfer_us(
                rmw_sectors * self.sector_size, is_write=False)
            occupancy += params.device_rmw_penalty_us + rmw_read
            latency += params.device_rmw_latency_us + rmw_read
        if self.ledger is not None:
            self.ledger.busy(RES_OSD_DEVICE, occupancy)
            self.ledger.count("device.ops")
            self.ledger.count("device.sectors", sectors)
            if is_write:
                self.ledger.count("device.sectors_written", sectors)
            else:
                self.ledger.count("device.sectors_read", sectors)
            if rmw_sectors:
                self.ledger.count("device.rmw_turns")
                self.ledger.count("device.rmw_sectors", rmw_sectors)
        return latency

    # -- data path ---------------------------------------------------------------

    def read(self, offset: int, length: int) -> "DeviceResult":
        """Read ``length`` bytes starting at ``offset``."""
        self._check_range(offset, length)
        data = bytearray()
        for sector in self._sector_span(offset, length):
            stored = self._sectors.get(sector)
            data += stored if stored is not None else bytes(self.sector_size)
        start_in_first = offset % self.sector_size
        payload = bytes(data[start_in_first:start_in_first + length])

        sectors = len(self._sector_span(offset, length))
        latency = self._charge(is_write=False, sectors=sectors, rmw_sectors=0)
        self.stats.read_ops += 1
        self.stats.sectors_read += sectors
        self.stats.bytes_read += length
        if self.trace is not None:
            self.trace.record("read", self.name, offset, length, sectors)
        return DeviceResult(data=payload, latency_us=latency, sectors=sectors)

    def write(self, offset: int, data: bytes) -> "DeviceResult":
        """Write ``data`` at ``offset`` (read-modify-write if unaligned)."""
        length = len(data)
        self._check_range(offset, length)
        span = self._sector_span(offset, length)
        sectors = len(span)

        head_unaligned = offset % self.sector_size != 0
        tail_unaligned = (offset + length) % self.sector_size != 0
        rmw_sectors = 0
        if length > 0 and head_unaligned:
            rmw_sectors += 1
        if length > 0 and tail_unaligned:
            last_sector = (offset + length) // self.sector_size
            first_sector = offset // self.sector_size
            if not (head_unaligned and last_sector == first_sector):
                rmw_sectors += 1
        # Small writes are deferred (journaled) by the object store and do
        # not pay a read-modify-write turn on the data device.
        if length < self.params.deferred_write_threshold:
            rmw_sectors = 0

        # Apply the bytes sector by sector (merging partial sectors).
        pos = offset
        remaining = memoryview(bytes(data))
        while remaining.nbytes > 0:
            sector = pos // self.sector_size
            within = pos % self.sector_size
            chunk = min(self.sector_size - within, remaining.nbytes)
            current = bytearray(self._sectors.get(sector, bytes(self.sector_size)))
            current[within:within + chunk] = remaining[:chunk]
            self._sectors[sector] = bytes(current)
            pos += chunk
            remaining = remaining[chunk:]

        latency = self._charge(is_write=True, sectors=sectors,
                               rmw_sectors=rmw_sectors)
        self.stats.write_ops += 1
        self.stats.sectors_written += sectors
        self.stats.bytes_written += length
        if rmw_sectors:
            self.stats.unaligned_writes += 1
            self.stats.rmw_sectors_read += rmw_sectors
        if self.trace is not None:
            self.trace.record("write", self.name, offset, length, sectors)
        return DeviceResult(data=b"", latency_us=latency, sectors=sectors)

    def discard(self, offset: int, length: int) -> "DeviceResult":
        """Discard (TRIM) a byte range; partial sectors are zero-filled."""
        self._check_range(offset, length)
        for sector in self._sector_span(offset, length):
            sector_start = sector * self.sector_size
            sector_end = sector_start + self.sector_size
            if offset <= sector_start and sector_end <= offset + length:
                self._sectors.pop(sector, None)
            else:
                current = bytearray(self._sectors.get(sector, bytes(self.sector_size)))
                lo = max(offset, sector_start) - sector_start
                hi = min(offset + length, sector_end) - sector_start
                current[lo:hi] = bytes(hi - lo)
                self._sectors[sector] = bytes(current)
        self.stats.discards += 1
        if self.ledger is not None:
            self.ledger.count("device.discards")
            self.ledger.busy(RES_OSD_DEVICE, self.params.device_op_occupancy_us)
        return DeviceResult(data=b"", latency_us=self.params.device_write_latency_us,
                            sectors=0)

    def flush(self) -> "DeviceResult":
        """Flush the device write cache (fixed small cost)."""
        self.stats.flushes += 1
        if self.ledger is not None:
            self.ledger.count("device.flushes")
            self.ledger.busy(RES_OSD_DEVICE, self.params.device_op_occupancy_us)
        return DeviceResult(data=b"", latency_us=self.params.device_write_latency_us,
                            sectors=0)

    # -- inspection -----------------------------------------------------------------

    def allocated_sectors(self) -> int:
        """Number of sectors that hold data (sparse occupancy)."""
        return len(self._sectors)

    def used_bytes(self) -> int:
        """Bytes of backing storage currently allocated."""
        return len(self._sectors) * self.sector_size


@dataclass
class DeviceResult:
    """Payload plus cost information returned by each device operation."""

    data: bytes
    latency_us: float
    sectors: int
    extra: Dict[str, float] = field(default_factory=dict)
