"""AES-CBC mode.

CBC is the historical disk-encryption mode that AES-XTS replaced (§2.1 of
the paper, footnote 1).  It is included both for completeness and because
the security-analysis examples contrast its leakage profile (an adversary
observing an overwrite under the same IV learns the position of the *first*
changed sub-block) with XTS (every changed sub-block is visible) and with
random-IV encryption (nothing is visible).
"""

from __future__ import annotations

from .aes import AES, BLOCK_SIZE
from ..errors import DataSizeError, IVSizeError
from ..util import xor_bytes


class CBC:
    """AES-CBC bound to a single key; the IV is supplied per call."""

    def __init__(self, key: bytes) -> None:
        self._cipher = AES(key)

    @property
    def key_size(self) -> int:
        """Underlying AES key size in bytes."""
        return self._cipher.key_size

    def _check(self, iv: bytes, data: bytes) -> None:
        if len(iv) != BLOCK_SIZE:
            raise IVSizeError(f"CBC IV must be 16 bytes, got {len(iv)}")
        if len(data) % BLOCK_SIZE:
            raise DataSizeError(
                f"CBC data must be a multiple of 16 bytes, got {len(data)}")

    def encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        """Encrypt a multiple of 16 bytes under ``iv``."""
        self._check(iv, plaintext)
        out = bytearray()
        previous = iv
        for off in range(0, len(plaintext), BLOCK_SIZE):
            block = xor_bytes(plaintext[off:off + BLOCK_SIZE], previous)
            previous = self._cipher.encrypt_block(block)
            out += previous
        return bytes(out)

    def decrypt(self, iv: bytes, ciphertext: bytes) -> bytes:
        """Decrypt a multiple of 16 bytes under ``iv``."""
        self._check(iv, ciphertext)
        out = bytearray()
        previous = iv
        for off in range(0, len(ciphertext), BLOCK_SIZE):
            block = ciphertext[off:off + BLOCK_SIZE]
            out += xor_bytes(self._cipher.decrypt_block(block), previous)
            previous = block
        return bytes(out)
