"""AES-GCM authenticated encryption (NIST SP 800-38D).

The paper positions AES-GCM as the natural cipher once per-sector metadata
exists (§3.1: "this can be used also for storing integrity information, or
using an alternative cipher like AES-GCM"), because GCM needs both a
never-repeating nonce *and* space for its authentication tag — neither of
which classic length-preserving disk encryption can provide.  The
``gcm_auth`` encryption format in :mod:`repro.encryption.gcm_auth` builds on
this implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from .aes import AES, BLOCK_SIZE
from .ctr import CTR, _inc32
from .gf128 import GHashKey, ghash
from ..errors import AuthenticationError, IVSizeError
from ..util import constant_time_compare

#: Default GCM tag length in bytes.
TAG_SIZE = 16
#: Recommended nonce size (96 bits) — other sizes are supported via GHASH.
NONCE_SIZE = 12


@dataclass(frozen=True)
class GCMResult:
    """Ciphertext plus authentication tag produced by :meth:`GCM.encrypt`."""

    ciphertext: bytes
    tag: bytes


class GCM:
    """AES-GCM bound to a single key; nonce supplied per call."""

    def __init__(self, key: bytes, tag_size: int = TAG_SIZE) -> None:
        if not 12 <= tag_size <= 16:
            raise IVSizeError("GCM tag size must be between 12 and 16 bytes")
        self._cipher = AES(key)
        self._ctr = CTR(key)
        self._h = self._cipher.encrypt_block(b"\x00" * BLOCK_SIZE)
        self._tag_size = tag_size
        #: 4-bit windowed GHASH tables, built lazily on first use and
        #: cached for the life of the cipher object (the table build is
        #: per-key work; one GCM object encrypts many sectors).
        self._ghash_key: Optional[GHashKey] = None

    @property
    def tag_size(self) -> int:
        """Length of produced/verified tags in bytes."""
        return self._tag_size

    @property
    def ghash_key(self) -> GHashKey:
        """The cached windowed-table GHASH key (built on first access)."""
        if self._ghash_key is None:
            self._ghash_key = GHashKey(self._h)
        return self._ghash_key

    def _j0(self, nonce: bytes) -> bytes:
        if len(nonce) == NONCE_SIZE:
            return nonce + b"\x00\x00\x00\x01"
        return ghash(self._h, b"", nonce, key=self.ghash_key)

    def encrypt(self, nonce: bytes, plaintext, aad: bytes = b"") -> GCMResult:
        """Encrypt and authenticate; returns ciphertext and tag.

        ``plaintext`` is any bytes-like object (the zero-copy write path
        hands in memoryviews of the caller's buffers).
        """
        if not nonce:
            raise IVSizeError("GCM nonce must not be empty")
        j0 = self._j0(nonce)
        ciphertext = self._ctr.xcrypt(_inc32(j0), plaintext)
        full_tag = ghash(self._h, aad, ciphertext, key=self.ghash_key)
        tag = bytes(a ^ b for a, b in
                    zip(full_tag, self._cipher.encrypt_block(j0)))
        return GCMResult(ciphertext=ciphertext, tag=tag[:self._tag_size])

    def decrypt(self, nonce: bytes, ciphertext: bytes, tag: bytes,
                aad: bytes = b"") -> bytes:
        """Verify the tag and decrypt; raises :class:`AuthenticationError`."""
        if not nonce:
            raise IVSizeError("GCM nonce must not be empty")
        j0 = self._j0(nonce)
        full_tag = ghash(self._h, aad, ciphertext, key=self.ghash_key)
        expected = bytes(a ^ b for a, b in
                         zip(full_tag, self._cipher.encrypt_block(j0)))
        if not constant_time_compare(expected[:self._tag_size], tag):
            raise AuthenticationError("GCM tag verification failed")
        return self._ctr.xcrypt(_inc32(j0), ciphertext)
