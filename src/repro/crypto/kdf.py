"""Key derivation and key wrapping used by the LUKS-style header.

* PBKDF2-HMAC-SHA256 — passphrase to key-encryption key (LUKS key slots).
* HKDF (extract/expand) — deriving independent sub-keys (data key, tweak
  key, MAC key, OMAP key) from a single volume key.
* AES Key Wrap (RFC 3394) — protecting the volume key inside a key slot.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import List

from .aes import AES
from ..errors import AuthenticationError, DataSizeError

_KEYWRAP_IV = b"\xa6" * 8


def pbkdf2(passphrase: bytes, salt: bytes, iterations: int, length: int) -> bytes:
    """PBKDF2-HMAC-SHA256."""
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    return hashlib.pbkdf2_hmac("sha256", passphrase, salt, iterations, length)


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract (RFC 5869) with SHA-256."""
    if not salt:
        salt = b"\x00" * 32
    return hmac.new(salt, ikm, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand (RFC 5869) with SHA-256."""
    if length > 255 * 32:
        raise ValueError("HKDF-Expand output too long")
    blocks: List[bytes] = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(prk, previous + info + bytes([counter]),
                            hashlib.sha256).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(ikm: bytes, info: bytes, length: int, salt: bytes = b"") -> bytes:
    """One-shot HKDF."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)


def derive_subkey(volume_key: bytes, purpose: str, length: int) -> bytes:
    """Derive a purpose-labelled sub-key from the volume key."""
    return hkdf(volume_key, b"repro/" + purpose.encode("utf-8"), length)


def aes_key_wrap(kek: bytes, key_data: bytes) -> bytes:
    """AES Key Wrap (RFC 3394).  ``key_data`` must be a multiple of 8 bytes."""
    if len(key_data) % 8 or len(key_data) < 16:
        raise DataSizeError("key data must be a multiple of 8 bytes, >= 16")
    cipher = AES(kek)
    n = len(key_data) // 8
    a = _KEYWRAP_IV
    r = [key_data[i * 8:(i + 1) * 8] for i in range(n)]
    for j in range(6):
        for i in range(n):
            b = cipher.encrypt_block(a + r[i])
            t = n * j + i + 1
            a = bytes(x ^ y for x, y in zip(b[:8], t.to_bytes(8, "big")))
            r[i] = b[8:]
    return a + b"".join(r)


def aes_key_unwrap(kek: bytes, wrapped: bytes) -> bytes:
    """AES Key Unwrap (RFC 3394); raises on integrity-check failure."""
    if len(wrapped) % 8 or len(wrapped) < 24:
        raise DataSizeError("wrapped key must be a multiple of 8 bytes, >= 24")
    cipher = AES(kek)
    n = len(wrapped) // 8 - 1
    a = wrapped[:8]
    r = [wrapped[(i + 1) * 8:(i + 2) * 8] for i in range(n)]
    for j in range(5, -1, -1):
        for i in range(n - 1, -1, -1):
            t = n * j + i + 1
            a_xored = bytes(x ^ y for x, y in zip(a, t.to_bytes(8, "big")))
            b = cipher.decrypt_block(a_xored + r[i])
            a = b[:8]
            r[i] = b[8:]
    if a != _KEYWRAP_IV:
        raise AuthenticationError("AES key unwrap integrity check failed")
    return b"".join(r)
