"""Fast keyed ciphers for large simulation runs.

The real AES implementation in this package is pure Python and therefore
slow (microseconds per 16-byte block).  The paper's throughput experiments
move hundreds of megabytes per run; what matters for those experiments is
*how many device sectors, KV operations and network round trips each layout
touches*, not the CPU cost of AES (the paper's client machines run AES-NI
at memory bandwidth).  The benchmark harness therefore defaults to the
ciphers below, which are keyed, IV-dependent and length preserving — so the
full metadata path is exercised bit-for-bit — but run at hashlib speed.

These are **not** standardised disk-encryption algorithms and are clearly
named to avoid any confusion with AES-XTS.  Every correctness-critical test
uses the real AES-XTS/GCM implementations.
"""

from __future__ import annotations

import hashlib

from ..errors import IVSizeError, KeySizeError
from ..util import xor_bytes


class Blake2Xts:
    """Keystream cipher: BLAKE2b(key, tweak || counter) XORed over the data.

    Mirrors the :class:`repro.crypto.xts.XTS` interface (``encrypt(tweak,
    data)`` / ``decrypt(tweak, data)``) so the encryption formats can treat
    the two interchangeably.
    """

    #: keystream block produced per hash invocation
    _CHUNK = 64

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise KeySizeError("Blake2Xts key must be at least 16 bytes")
        self._key = hashlib.blake2b(key, digest_size=32).digest()

    def _keystream(self, tweak: bytes, length: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < length:
            block = hashlib.blake2b(
                tweak + counter.to_bytes(8, "little"),
                key=self._key, digest_size=self._CHUNK).digest()
            out += block
            counter += 1
        return bytes(out[:length])

    def encrypt(self, tweak: bytes, plaintext: bytes) -> bytes:
        """Encrypt (XOR with the tweak-derived keystream)."""
        if len(tweak) != 16:
            raise IVSizeError("tweak must be 16 bytes")
        return xor_bytes(plaintext, self._keystream(tweak, len(plaintext)))

    def decrypt(self, tweak: bytes, ciphertext: bytes) -> bytes:
        """Decrypt (same operation as encrypt)."""
        return self.encrypt(tweak, ciphertext)


class NullCipher:
    """Identity 'cipher' for pure cost-model runs (no data transformation).

    Useful to isolate the metadata-layout overhead from any CPU effect in
    ablation studies; never use outside the simulator.
    """

    def __init__(self, key: bytes = b"") -> None:
        self._key = key

    def encrypt(self, tweak: bytes, plaintext: bytes) -> bytes:
        """Return the plaintext unchanged."""
        return plaintext

    def decrypt(self, tweak: bytes, ciphertext: bytes) -> bytes:
        """Return the ciphertext unchanged."""
        return ciphertext
