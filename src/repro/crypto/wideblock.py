"""Wide-block (sector-wide) tweakable encryption.

The paper's §2.2 discusses wide-block encryption (IEEE 1619.2: XCB-AES and
EME2-AES) as a partial mitigation: it is still deterministic, but any change
to any plaintext bit flips the entire ciphertext sector, so sub-block
granular leakage and mix-and-match forgeries disappear.

This module implements an HCTR-style hash–counter–hash construction rather
than the patented/certified EME2 or XCB algorithms: it provides the same
*functional* property (every plaintext bit influences every ciphertext bit,
length preserving, tweakable) which is what the reproduction's experiments
and attack demonstrations exercise.  It is clearly labelled non-standard;
see DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from .aes import AES, BLOCK_SIZE
from .ctr import CTR
from .gf128 import GHashKey, poly_hash
from ..errors import DataSizeError, KeySizeError
from ..util import xor_bytes


class WideBlockCipher:
    """Tweakable length-preserving cipher over an entire sector.

    Parameters
    ----------
    key:
        32 or 64 bytes.  The first half keys the AES layer, the second half
        (hashed down to 16 bytes if necessary) keys the universal hash.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (32, 64):
            raise KeySizeError(
                f"wide-block key must be 32 or 64 bytes, got {len(key)}")
        half = len(key) // 2
        self._aes = AES(key[:half])
        self._ctr = CTR(key[:half], wide_counter=True)
        hash_key = key[half:]
        if len(hash_key) != 16:
            # Derive a 16-byte hash key deterministically from the second half.
            hash_key = self._aes.encrypt_block(hash_key[:16])
        self._hash_key = hash_key
        # Windowed GHASH tables for the universal hash, built once per key.
        self._hash_tables = GHashKey(hash_key)

    def _hash(self, tweak: bytes, tail) -> bytes:
        return poly_hash(self._hash_key, [tweak, tail],
                         key=self._hash_tables)

    def encrypt(self, tweak: bytes, plaintext) -> bytes:
        """Encrypt a sector (must be longer than one AES block)."""
        if len(plaintext) <= BLOCK_SIZE:
            raise DataSizeError(
                "wide-block encryption needs more than 16 bytes")
        view = memoryview(plaintext)
        head, tail = bytes(view[:BLOCK_SIZE]), view[BLOCK_SIZE:]
        mm = xor_bytes(head, self._hash(tweak, tail))
        cc = self._aes.encrypt_block(mm)
        seed = xor_bytes(mm, cc)
        ctail = xor_bytes(tail, self._ctr.keystream(seed, len(tail)))
        chead = xor_bytes(cc, self._hash(tweak, ctail))
        return chead + ctail

    def decrypt(self, tweak: bytes, ciphertext: bytes) -> bytes:
        """Decrypt a sector produced by :meth:`encrypt`."""
        if len(ciphertext) <= BLOCK_SIZE:
            raise DataSizeError(
                "wide-block decryption needs more than 16 bytes")
        chead, ctail = ciphertext[:BLOCK_SIZE], ciphertext[BLOCK_SIZE:]
        cc = xor_bytes(chead, self._hash(tweak, ctail))
        mm = self._aes.decrypt_block(cc)
        seed = xor_bytes(mm, cc)
        tail = xor_bytes(ctail, self._ctr.keystream(seed, len(ctail)))
        head = xor_bytes(mm, self._hash(tweak, tail))
        return head + tail
