"""GF(2^128) arithmetic used by XTS, GCM/GHASH and the wide-block mode.

Two different bit conventions appear in the standards this reproduction
implements:

* **XTS** multiplies the tweak by the primitive element ``alpha`` using a
  little-endian bit order (IEEE 1619).
* **GHASH** (GCM) uses the "reflected" big-endian convention of NIST
  SP 800-38D with the reduction polynomial ``x^128 + x^7 + x^2 + x + 1``.

Both are provided here, clearly separated, together with a polynomial
evaluation hash used by the HCTR-style wide-block cipher.
"""

from __future__ import annotations

from typing import Iterable

MASK128 = (1 << 128) - 1

# ---------------------------------------------------------------------------
# XTS convention (little-endian bit order)
# ---------------------------------------------------------------------------


def xts_mul_alpha(tweak: bytes) -> bytes:
    """Multiply a 16-byte XTS tweak by alpha (IEEE 1619 little-endian)."""
    if len(tweak) != 16:
        raise ValueError("XTS tweak must be 16 bytes")
    value = int.from_bytes(tweak, "little") << 1
    if value >> 128:
        value = (value & MASK128) ^ 0x87
    return value.to_bytes(16, "little")


def xts_mul_alpha_pow(tweak: bytes, power: int) -> bytes:
    """Multiply an XTS tweak by alpha**power (used to jump within a sector)."""
    result = tweak
    for _ in range(power):
        result = xts_mul_alpha(result)
    return result


# ---------------------------------------------------------------------------
# GHASH convention (reflected, as in NIST SP 800-38D)
# ---------------------------------------------------------------------------

_R = 0xE1000000000000000000000000000000


def ghash_mult(x: int, y: int) -> int:
    """Multiply two field elements in the GHASH representation."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


class GHash:
    """Incremental GHASH universal hash keyed by ``H`` (a 16-byte string)."""

    def __init__(self, h: bytes) -> None:
        if len(h) != 16:
            raise ValueError("GHASH key must be 16 bytes")
        self._h = int.from_bytes(h, "big")
        self._y = 0

    def update(self, data: bytes) -> "GHash":
        """Absorb data, zero-padded on the right to a 16-byte boundary."""
        for off in range(0, len(data), 16):
            block = data[off:off + 16]
            if len(block) < 16:
                block = block + b"\x00" * (16 - len(block))
            self._y = ghash_mult(self._y ^ int.from_bytes(block, "big"),
                                 self._h)
        return self

    def update_block(self, block: bytes) -> "GHash":
        """Absorb exactly one 16-byte block (no padding applied)."""
        if len(block) != 16:
            raise ValueError("GHASH block must be 16 bytes")
        self._y = ghash_mult(self._y ^ int.from_bytes(block, "big"), self._h)
        return self

    def digest(self) -> bytes:
        """Return the current 16-byte hash value (does not reset state)."""
        return self._y.to_bytes(16, "big")


def ghash(h: bytes, aad: bytes, ciphertext: bytes) -> bytes:
    """One-shot GHASH over AAD and ciphertext with the standard length block."""
    g = GHash(h)
    g.update(aad)
    g.update(ciphertext)
    lengths = (len(aad) * 8).to_bytes(8, "big") + (len(ciphertext) * 8).to_bytes(8, "big")
    g.update_block(lengths)
    return g.digest()


# ---------------------------------------------------------------------------
# Polynomial-evaluation hash for the wide-block (HCTR-style) mode
# ---------------------------------------------------------------------------


def poly_hash(h: bytes, chunks: Iterable[bytes]) -> bytes:
    """Evaluate a polynomial hash of the given 16-byte-padded chunks.

    The hash is ``sum_i  m_i * H^(n-i+1)  +  len * H`` computed in the GHASH
    field.  It is *not* GHASH itself but shares the field arithmetic; the
    wide-block cipher only needs an almost-XOR-universal hash.
    """
    hval = int.from_bytes(h, "big")
    acc = 0
    total_len = 0
    for item in chunks:
        total_len += len(item)
        for off in range(0, len(item), 16):
            block = item[off:off + 16]
            if len(block) < 16:
                block = block + b"\x00" * (16 - len(block))
            acc = ghash_mult(acc ^ int.from_bytes(block, "big"), hval)
    acc = ghash_mult(acc ^ (total_len * 8), hval)
    return acc.to_bytes(16, "big")
