"""GF(2^128) arithmetic used by XTS, GCM/GHASH and the wide-block mode.

Two different bit conventions appear in the standards this reproduction
implements:

* **XTS** multiplies the tweak by the primitive element ``alpha`` using a
  little-endian bit order (IEEE 1619).
* **GHASH** (GCM) uses the "reflected" big-endian convention of NIST
  SP 800-38D with the reduction polynomial ``x^128 + x^7 + x^2 + x + 1``.

Both are provided here, clearly separated, together with a polynomial
evaluation hash used by the HCTR-style wide-block cipher.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

MASK128 = (1 << 128) - 1

# ---------------------------------------------------------------------------
# XTS convention (little-endian bit order)
# ---------------------------------------------------------------------------


def xts_mul_alpha(tweak: bytes) -> bytes:
    """Multiply a 16-byte XTS tweak by alpha (IEEE 1619 little-endian)."""
    if len(tweak) != 16:
        raise ValueError("XTS tweak must be 16 bytes")
    value = int.from_bytes(tweak, "little") << 1
    if value >> 128:
        value = (value & MASK128) ^ 0x87
    return value.to_bytes(16, "little")


def _xts_fold(value: int) -> int:
    """Reduce a (<256-bit) polynomial product modulo x^128 + x^7 + x^2 + x + 1.

    In the little-endian-int XTS representation ``x^128 ≡ 0x87``, so the
    bits above position 127 fold back in as a carry-less multiply by 0x87
    (three shifted XOR terms plus the value itself).
    """
    while value >> 128:
        high = value >> 128
        value = (value & MASK128) ^ high ^ (high << 1) ^ (high << 2) \
            ^ (high << 7)
    return value


def xts_tweak_chain(initial: int, count: int) -> List[int]:
    """The per-sector tweak chain ``[T, T*alpha, ..., T*alpha^(count-1)]``.

    Operates entirely on little-endian integers: the batched XTS sector
    path computes the whole chain in one call (three integer ops per
    sub-block) instead of round-tripping through 16-byte strings per
    sub-block the way chained :func:`xts_mul_alpha` does.
    """
    chain = [0] * count
    value = initial
    for i in range(count):
        chain[i] = value
        value <<= 1
        if value >> 128:
            value = (value & MASK128) ^ 0x87
    return chain


def xts_mul_alpha_pow(tweak: bytes, power: int) -> bytes:
    """Multiply an XTS tweak by alpha**power (used to jump within a sector).

    ``alpha**power`` is the single polynomial term ``x**power``, so the
    jump is one shift of the whole tweak followed by reduction — O(1) per
    jump instead of ``power`` chained doublings.
    """
    if power < 0:
        raise ValueError("alpha power must be non-negative")
    value = int.from_bytes(tweak, "little")
    # Keep intermediate products under 256 bits so _xts_fold terminates in
    # a couple of iterations.
    while power > 120:
        value = _xts_fold(value << 120)
        power -= 120
    return _xts_fold(value << power).to_bytes(16, "little")


# ---------------------------------------------------------------------------
# GHASH convention (reflected, as in NIST SP 800-38D)
# ---------------------------------------------------------------------------

_R = 0xE1000000000000000000000000000000


def ghash_mult(x: int, y: int) -> int:
    """Multiply two field elements in the GHASH representation.

    Bit-serial reference implementation (128 iterations).  The data path
    uses :class:`GHashKey`'s 4-bit windowed tables instead; this function
    remains the correctness oracle the tables are tested against.
    """
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _mul_x(value: int) -> int:
    """Multiply a GHASH field element by x (one halving with reduction)."""
    if value & 1:
        return (value >> 1) ^ _R
    return value >> 1


def _build_shift4_table() -> List[int]:
    """Reduction table for multiplying by x^4: entry ``n`` is the field
    element contributed by the four low bits ``n`` that fall off the end of
    a 4-bit right shift."""
    table = []
    for nibble in range(16):
        value = nibble
        for _ in range(4):
            value = _mul_x(value)
        table.append(value)
    return table


#: key-independent x^4 reduction table (16 entries, built at import time)
_SHIFT4_TABLE: List[int] = _build_shift4_table()


class GHashKey:
    """Per-key 4-bit windowed multiplication tables for GHASH (Shoup).

    Multiplying the accumulator by ``H`` walks the accumulator's 32
    nibbles with two table lookups and two XORs each, instead of the 128
    shift-and-conditional-XOR iterations of :func:`ghash_mult`.  The table
    (16 entries) is built once per key; GCM cipher objects build it lazily
    and cache it (see :class:`repro.crypto.gcm.GCM`).
    """

    __slots__ = ("h", "_table")

    def __init__(self, h: bytes) -> None:
        if len(h) != 16:
            raise ValueError("GHASH key must be 16 bytes")
        self.h = int.from_bytes(h, "big")
        # Within a nibble, bit 3 is the *lowest* power: M[8] = H * x^0,
        # M[4] = H * x, M[2] = H * x^2, M[1] = H * x^3; other entries are
        # XOR combinations.
        table = [0] * 16
        table[8] = self.h
        table[4] = _mul_x(table[8])
        table[2] = _mul_x(table[4])
        table[1] = _mul_x(table[2])
        for base in (2, 4, 8):
            for rest in range(1, base):
                table[base + rest] = table[base] ^ table[rest]
        self._table = table

    def mult(self, x: int) -> int:
        """Return ``x * H`` in the GHASH field (4-bit windowed)."""
        table = self._table
        shift4 = _SHIFT4_TABLE
        z = 0
        for shift in range(0, 128, 4):
            z = (z >> 4) ^ shift4[z & 0xF] ^ table[(x >> shift) & 0xF]
        return z


class GHash:
    """Incremental GHASH universal hash keyed by ``H`` (a 16-byte string).

    Pass a prebuilt :class:`GHashKey` to amortize the windowed-table build
    across calls (GCM does this); otherwise one is built on the spot.
    """

    def __init__(self, h: bytes, key: Optional[GHashKey] = None) -> None:
        if len(h) != 16:
            raise ValueError("GHASH key must be 16 bytes")
        self._h = int.from_bytes(h, "big")
        self._key = key if key is not None else GHashKey(h)
        self._y = 0

    def update(self, data: bytes) -> "GHash":
        """Absorb data, zero-padded on the right to a 16-byte boundary."""
        mult = self._key.mult
        y = self._y
        for off in range(0, len(data), 16):
            block = bytes(data[off:off + 16])
            if len(block) < 16:
                block = block + b"\x00" * (16 - len(block))
            y = mult(y ^ int.from_bytes(block, "big"))
        self._y = y
        return self

    def update_block(self, block: bytes) -> "GHash":
        """Absorb exactly one 16-byte block (no padding applied)."""
        if len(block) != 16:
            raise ValueError("GHASH block must be 16 bytes")
        self._y = self._key.mult(self._y ^ int.from_bytes(block, "big"))
        return self

    def digest(self) -> bytes:
        """Return the current 16-byte hash value (does not reset state)."""
        return self._y.to_bytes(16, "big")


def ghash(h: bytes, aad: bytes, ciphertext: bytes,
          key: Optional[GHashKey] = None) -> bytes:
    """One-shot GHASH over AAD and ciphertext with the standard length block.

    ``key`` is an optional prebuilt :class:`GHashKey` for ``h`` so repeated
    calls under one cipher key skip the table build.
    """
    g = GHash(h, key=key)
    g.update(aad)
    g.update(ciphertext)
    lengths = (len(aad) * 8).to_bytes(8, "big") + (len(ciphertext) * 8).to_bytes(8, "big")
    g.update_block(lengths)
    return g.digest()


# ---------------------------------------------------------------------------
# Polynomial-evaluation hash for the wide-block (HCTR-style) mode
# ---------------------------------------------------------------------------


def poly_hash(h: bytes, chunks: Iterable[bytes],
              key: Optional[GHashKey] = None) -> bytes:
    """Evaluate a polynomial hash of the given 16-byte-padded chunks.

    The hash is ``sum_i  m_i * H^(n-i+1)  +  len * H`` computed in the GHASH
    field.  It is *not* GHASH itself but shares the field arithmetic; the
    wide-block cipher only needs an almost-XOR-universal hash.  ``key`` is
    an optional prebuilt :class:`GHashKey` for ``h`` (the wide-block cipher
    caches one so the windowed tables are built once per key).
    """
    mult = (key if key is not None else GHashKey(h)).mult
    acc = 0
    total_len = 0
    for item in chunks:
        total_len += len(item)
        for off in range(0, len(item), 16):
            block = bytes(item[off:off + 16])
            if len(block) < 16:
                block = block + b"\x00" * (16 - len(block))
            acc = mult(acc ^ int.from_bytes(block, "big"))
    acc = mult(acc ^ (total_len * 8))
    return acc.to_bytes(16, "big")
