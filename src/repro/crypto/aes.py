"""Pure-Python AES block cipher (AES-128/192/256).

This is a from-scratch implementation of FIPS-197 used as the primitive
underneath every encryption mode in the reproduction (XTS, CBC, GCM, the
wide-block mode and ESSIV).  Encryption uses 32-bit T-tables; decryption
uses the inverse S-box together with precomputed GF(2^8) multiplication
tables for InvMixColumns.  Correctness is pinned to the FIPS-197 appendix
vectors in ``tests/crypto/test_aes.py``.

Two paths coexist:

* the **scalar path** (``encrypt_block``/``decrypt_block``) processes one
  16-byte block per call and favours clarity — it is the reference the
  batched path is tested against, and
* the **batched path** (``encrypt_blocks``/``decrypt_blocks``) processes a
  whole sector (or batch window) of blocks per call by expressing every
  AES round as a handful of C-level bulk primitives over the entire batch:
  SubBytes is one :meth:`bytes.translate`, ShiftRows and the MixColumns
  byte rotations are strided-slice moves, and AddRoundKey/MixColumns XOR
  folding runs on arbitrary-precision integers covering the whole batch.
  The per-round work no longer scales with Python bytecode per block,
  which is what closes most of the gap to :mod:`repro.crypto.fastcipher`
  for real-cipher experiments (see README "Performance notes").

Both paths are bit-identical; ``tests/crypto/test_batched_kernels.py``
pins the equivalence on the FIPS-197 vectors and randomized sectors.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import DataSizeError, KeySizeError
from ..util import bounded_cache_get

BLOCK_SIZE = 16

#: below this many blocks the scalar loop beats the batched kernel's fixed
#: per-call cost (measured crossover is ~7 blocks on CPython 3.11)
MIN_BATCH_BLOCKS = 8

# ---------------------------------------------------------------------------
# Table construction (done once at import time).
# ---------------------------------------------------------------------------


def _build_sbox() -> List[int]:
    """Build the AES S-box from the multiplicative inverse in GF(2^8)."""
    # Build log/antilog tables using generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 (x ^= xtime(x))
        x ^= ((x << 1) ^ (0x1B if x & 0x80 else 0)) & 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inv(b: int) -> int:
        if b == 0:
            return 0
        return exp[255 - log[b]]

    sbox = [0] * 256
    for i in range(256):
        b = inv(i)
        # Affine transformation.
        res = 0
        for shift in (0, 1, 2, 3, 4):
            res ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[i] = res ^ 0x63
    return sbox


SBOX: List[int] = _build_sbox()
INV_SBOX: List[int] = [0] * 256
for _i, _v in enumerate(SBOX):
    INV_SBOX[_v] = _i


def _xtime(b: int) -> int:
    return ((b << 1) ^ (0x1B if b & 0x80 else 0)) & 0xFF


def _gmul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) (Russian peasant algorithm)."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a = _xtime(a)
    return result


# Encryption T-tables: Te0..Te3 (32-bit entries, big-endian byte order).
TE0: List[int] = [0] * 256
TE1: List[int] = [0] * 256
TE2: List[int] = [0] * 256
TE3: List[int] = [0] * 256
for _x in range(256):
    _s = SBOX[_x]
    _t = (_gmul(_s, 2) << 24) | (_s << 16) | (_s << 8) | _gmul(_s, 3)
    TE0[_x] = _t
    TE1[_x] = ((_t >> 8) | (_t << 24)) & 0xFFFFFFFF
    TE2[_x] = ((_t >> 16) | (_t << 16)) & 0xFFFFFFFF
    TE3[_x] = ((_t >> 24) | (_t << 8)) & 0xFFFFFFFF

# GF(2^8) multiplication tables for InvMixColumns.
MUL9: List[int] = [_gmul(_x, 9) for _x in range(256)]
MUL11: List[int] = [_gmul(_x, 11) for _x in range(256)]
MUL13: List[int] = [_gmul(_x, 13) for _x in range(256)]
MUL14: List[int] = [_gmul(_x, 14) for _x in range(256)]

RCON: List[int] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80,
                   0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]

_VALID_KEY_SIZES = (16, 24, 32)

# ---------------------------------------------------------------------------
# Batched-kernel tables: 256-byte translation maps (one bytes.translate call
# substitutes/multiplies every byte of a whole batch) and the ShiftRows
# byte-permutation patterns (applied batch-wide with strided slices).
# ---------------------------------------------------------------------------

#: S-box / inverse S-box as ``bytes.translate`` tables.
SBOX_TABLE: bytes = bytes(SBOX)
INV_SBOX_TABLE: bytes = bytes(INV_SBOX)
#: GF(2^8) doubling (xtime) as a translate table — the only multiplication
#: forward MixColumns needs once rewritten as ``2*(a0^a1) ^ a1 ^ a2 ^ a3``.
XTIME_TABLE: bytes = bytes(_xtime(_x) for _x in range(256))
#: InvMixColumns multiplier tables in translate form.
MUL9_TABLE: bytes = bytes(MUL9)
MUL11_TABLE: bytes = bytes(MUL11)
MUL13_TABLE: bytes = bytes(MUL13)
MUL14_TABLE: bytes = bytes(MUL14)

#: ShiftRows source index for destination byte ``4*col + row`` of a block
#: (the state is column-major, exactly as FIPS-197 loads input bytes).
SHIFT_ROWS_SRC: List[int] = [4 * ((_c + _r) % 4) + _r
                             for _c in range(4) for _r in range(4)]
INV_SHIFT_ROWS_SRC: List[int] = [4 * ((_c - _r) % 4) + _r
                                 for _c in range(4) for _r in range(4)]


class AES:
    """AES block cipher for a single fixed key.

    Parameters
    ----------
    key:
        16, 24 or 32 bytes (AES-128/192/256).
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in _VALID_KEY_SIZES:
            raise KeySizeError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
        self._key = bytes(key)
        self._round_keys = self._expand_key(self._key)
        self.rounds = len(self._round_keys) // 4 - 1
        #: per-batch-size tiled round keys (batch-wide integers), built
        #: lazily by the batched kernels; sector sizes recur, so in practice
        #: this holds one or two entries per cipher object.
        self._tiled_keys: Dict[int, List[int]] = {}

    @property
    def key(self) -> bytes:
        """The raw key this instance was constructed with."""
        return self._key

    @property
    def key_size(self) -> int:
        """Key length in bytes (16, 24 or 32)."""
        return len(self._key)

    # -- key schedule -------------------------------------------------------

    @staticmethod
    def _expand_key(key: bytes) -> List[int]:
        """Expand the key into 4*(rounds+1) 32-bit round-key words."""
        nk = len(key) // 4
        rounds = {4: 10, 6: 12, 8: 14}[nk]
        words: List[int] = [int.from_bytes(key[4 * i:4 * i + 4], "big")
                            for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = words[i - 1]
            if i % nk == 0:
                # RotWord + SubWord + Rcon
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
                temp = ((SBOX[(temp >> 24) & 0xFF] << 24)
                        | (SBOX[(temp >> 16) & 0xFF] << 16)
                        | (SBOX[(temp >> 8) & 0xFF] << 8)
                        | SBOX[temp & 0xFF])
                temp ^= RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = ((SBOX[(temp >> 24) & 0xFF] << 24)
                        | (SBOX[(temp >> 16) & 0xFF] << 16)
                        | (SBOX[(temp >> 8) & 0xFF] << 8)
                        | SBOX[temp & 0xFF])
            words.append(words[i - nk] ^ temp)
        return words

    # -- block operations ---------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise DataSizeError(f"AES block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        rounds = self.rounds
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]

        te0, te1, te2, te3 = TE0, TE1, TE2, TE3
        k = 4
        for _ in range(rounds - 1):
            t0 = (te0[(s0 >> 24) & 0xFF] ^ te1[(s1 >> 16) & 0xFF]
                  ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ rk[k])
            t1 = (te0[(s1 >> 24) & 0xFF] ^ te1[(s2 >> 16) & 0xFF]
                  ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ rk[k + 1])
            t2 = (te0[(s2 >> 24) & 0xFF] ^ te1[(s3 >> 16) & 0xFF]
                  ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ rk[k + 2])
            t3 = (te0[(s3 >> 24) & 0xFF] ^ te1[(s0 >> 16) & 0xFF]
                  ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ rk[k + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4

        sb = SBOX
        o0 = ((sb[(s0 >> 24) & 0xFF] << 24) | (sb[(s1 >> 16) & 0xFF] << 16)
              | (sb[(s2 >> 8) & 0xFF] << 8) | sb[s3 & 0xFF]) ^ rk[k]
        o1 = ((sb[(s1 >> 24) & 0xFF] << 24) | (sb[(s2 >> 16) & 0xFF] << 16)
              | (sb[(s3 >> 8) & 0xFF] << 8) | sb[s0 & 0xFF]) ^ rk[k + 1]
        o2 = ((sb[(s2 >> 24) & 0xFF] << 24) | (sb[(s3 >> 16) & 0xFF] << 16)
              | (sb[(s0 >> 8) & 0xFF] << 8) | sb[s1 & 0xFF]) ^ rk[k + 2]
        o3 = ((sb[(s3 >> 24) & 0xFF] << 24) | (sb[(s0 >> 16) & 0xFF] << 16)
              | (sb[(s1 >> 8) & 0xFF] << 8) | sb[s2 & 0xFF]) ^ rk[k + 3]
        return (o0.to_bytes(4, "big") + o1.to_bytes(4, "big")
                + o2.to_bytes(4, "big") + o3.to_bytes(4, "big"))

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise DataSizeError(f"AES block must be 16 bytes, got {len(block)}")
        rounds = self.rounds
        rk = self._round_keys
        state = list(block)

        # Initial AddRoundKey with the last round key.
        self._add_round_key(state, rk, rounds)
        inv_sbox = INV_SBOX
        for rnd in range(rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            state = [inv_sbox[b] for b in state]
            self._add_round_key(state, rk, rnd)
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        state = [inv_sbox[b] for b in state]
        self._add_round_key(state, rk, 0)
        return bytes(state)

    # -- decryption helpers (column-major byte state) -----------------------

    @staticmethod
    def _add_round_key(state: List[int], rk: Sequence[int], rnd: int) -> None:
        for col in range(4):
            word = rk[4 * rnd + col]
            state[4 * col + 0] ^= (word >> 24) & 0xFF
            state[4 * col + 1] ^= (word >> 16) & 0xFF
            state[4 * col + 2] ^= (word >> 8) & 0xFF
            state[4 * col + 3] ^= word & 0xFF

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> List[int]:
        out = [0] * 16
        # state is column-major: state[4*c + r]
        for col in range(4):
            for row in range(4):
                out[4 * ((col + row) % 4) + row] = state[4 * col + row]
        return out

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> List[int]:
        out = [0] * 16
        m9, m11, m13, m14 = MUL9, MUL11, MUL13, MUL14
        for col in range(4):
            a0, a1, a2, a3 = state[4 * col:4 * col + 4]
            out[4 * col + 0] = m14[a0] ^ m11[a1] ^ m13[a2] ^ m9[a3]
            out[4 * col + 1] = m9[a0] ^ m14[a1] ^ m11[a2] ^ m13[a3]
            out[4 * col + 2] = m13[a0] ^ m9[a1] ^ m14[a2] ^ m11[a3]
            out[4 * col + 3] = m11[a0] ^ m13[a1] ^ m9[a2] ^ m14[a3]
        return out

    # -- batched kernels ----------------------------------------------------

    def _tiled_round_keys(self, block_count: int) -> List[int]:
        """Round keys tiled across ``block_count`` blocks, as big integers.

        One XOR of such an integer applies AddRoundKey to the whole batch.
        """
        def build() -> List[int]:
            rk = self._round_keys
            tiled = []
            for rnd in range(self.rounds + 1):
                pattern = b"".join(rk[4 * rnd + i].to_bytes(4, "big")
                                   for i in range(4))
                tiled.append(int.from_bytes(pattern * block_count, "big"))
            return tiled

        return bounded_cache_get(self._tiled_keys, block_count, build)[0]

    def encrypt_blocks(self, data) -> bytes:
        """ECB-encrypt a batch of 16-byte blocks in one call.

        ``data`` is any bytes-like object whose length is a multiple of 16
        (a whole sector, or a batch window of sectors).  Output is
        bit-identical to calling :meth:`encrypt_block` per block; every
        round runs as a few C-level bulk operations over the entire batch.
        """
        size = len(data)
        if size % BLOCK_SIZE:
            raise DataSizeError("batch input must be a multiple of 16 bytes")
        n = size // BLOCK_SIZE
        if n == 0:
            return b""
        if n < MIN_BATCH_BLOCKS:
            encrypt = self.encrypt_block
            return b"".join(encrypt(bytes(data[i:i + BLOCK_SIZE]))
                            for i in range(0, size, BLOCK_SIZE))
        rk = self._tiled_round_keys(n)
        shift_src = SHIFT_ROWS_SRC
        state = (int.from_bytes(data, "big") ^ rk[0]).to_bytes(size, "big")
        shifted = bytearray(size)
        rot1 = bytearray(size)
        rot2 = bytearray(size)
        rot3 = bytearray(size)
        for rnd in range(1, self.rounds):
            subbed = state.translate(SBOX_TABLE)
            # ShiftRows: row 0 is the identity (one stride-4 move); rows
            # 1..3 need their 12 stride-16 moves.
            shifted[0::4] = subbed[0::4]
            for dst in range(16):
                src = shift_src[dst]
                if src != dst:
                    shifted[dst::16] = subbed[src::16]
            # MixColumns via out = 2*(a_r ^ a_{r+1}) ^ a_{r+1} ^ a_{r+2}
            # ^ a_{r+3}: three byte rotations within each column...
            for row in range(4):
                rot1[row::4] = shifted[(row + 1) & 3::4]
                rot2[row::4] = shifted[(row + 2) & 3::4]
                rot3[row::4] = shifted[(row + 3) & 3::4]
            shifted_int = int.from_bytes(shifted, "big")
            rot1_int = int.from_bytes(rot1, "big")
            # ...one xtime translate of the whole batch...
            doubled = (shifted_int ^ rot1_int).to_bytes(size, "big") \
                .translate(XTIME_TABLE)
            # ...and one batch-wide XOR that also folds in AddRoundKey.
            state = (int.from_bytes(doubled, "big") ^ rot1_int
                     ^ int.from_bytes(rot2, "big")
                     ^ int.from_bytes(rot3, "big")
                     ^ rk[rnd]).to_bytes(size, "big")
        subbed = state.translate(SBOX_TABLE)
        for dst in range(16):
            shifted[dst::16] = subbed[shift_src[dst]::16]
        return (int.from_bytes(shifted, "big")
                ^ rk[self.rounds]).to_bytes(size, "big")

    def decrypt_blocks(self, data) -> bytes:
        """ECB-decrypt a batch of 16-byte blocks in one call.

        The batched counterpart of :meth:`decrypt_block` (bit-identical);
        InvMixColumns runs as four translate-table multiplies over the
        whole batch.
        """
        size = len(data)
        if size % BLOCK_SIZE:
            raise DataSizeError("batch input must be a multiple of 16 bytes")
        n = size // BLOCK_SIZE
        if n == 0:
            return b""
        if n < MIN_BATCH_BLOCKS:
            decrypt = self.decrypt_block
            return b"".join(decrypt(bytes(data[i:i + BLOCK_SIZE]))
                            for i in range(0, size, BLOCK_SIZE))
        rk = self._tiled_round_keys(n)
        inv_src = INV_SHIFT_ROWS_SRC
        state = (int.from_bytes(data, "big")
                 ^ rk[self.rounds]).to_bytes(size, "big")
        shifted = bytearray(size)
        rot1 = bytearray(size)
        rot2 = bytearray(size)
        rot3 = bytearray(size)
        for rnd in range(self.rounds - 1, 0, -1):
            for dst in range(16):
                shifted[dst::16] = state[inv_src[dst]::16]
            subbed = shifted.translate(INV_SBOX_TABLE)
            keyed = (int.from_bytes(subbed, "big")
                     ^ rk[rnd]).to_bytes(size, "big")
            for row in range(4):
                rot1[row::4] = keyed[(row + 1) & 3::4]
                rot2[row::4] = keyed[(row + 2) & 3::4]
                rot3[row::4] = keyed[(row + 3) & 3::4]
            # InvMixColumns: 14*a_r ^ 11*a_{r+1} ^ 13*a_{r+2} ^ 9*a_{r+3}.
            state = (int.from_bytes(keyed.translate(MUL14_TABLE), "big")
                     ^ int.from_bytes(rot1.translate(MUL11_TABLE), "big")
                     ^ int.from_bytes(rot2.translate(MUL13_TABLE), "big")
                     ^ int.from_bytes(rot3.translate(MUL9_TABLE), "big")
                     ).to_bytes(size, "big")
        for dst in range(16):
            shifted[dst::16] = state[inv_src[dst]::16]
        subbed = shifted.translate(INV_SBOX_TABLE)
        return (int.from_bytes(subbed, "big") ^ rk[0]).to_bytes(size, "big")

    # -- convenience --------------------------------------------------------

    def encrypt_ecb(self, data: bytes) -> bytes:
        """ECB-encrypt a multiple of 16 bytes (building block for modes)."""
        return self.encrypt_blocks(data)

    def decrypt_ecb(self, data: bytes) -> bytes:
        """ECB-decrypt a multiple of 16 bytes."""
        return self.decrypt_blocks(data)
