"""Pure-Python AES block cipher (AES-128/192/256).

This is a from-scratch implementation of FIPS-197 used as the primitive
underneath every encryption mode in the reproduction (XTS, CBC, GCM, the
wide-block mode and ESSIV).  Encryption uses 32-bit T-tables; decryption
uses the inverse S-box together with precomputed GF(2^8) multiplication
tables for InvMixColumns.  Correctness is pinned to the FIPS-197 appendix
vectors in ``tests/crypto/test_aes.py``.

The implementation favours clarity over raw speed: it processes one
16-byte block per call.  Bulk simulation workloads should use
:mod:`repro.crypto.fastcipher` instead (see DESIGN.md §2).
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import DataSizeError, KeySizeError

BLOCK_SIZE = 16

# ---------------------------------------------------------------------------
# Table construction (done once at import time).
# ---------------------------------------------------------------------------


def _build_sbox() -> List[int]:
    """Build the AES S-box from the multiplicative inverse in GF(2^8)."""
    # Build log/antilog tables using generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 (x ^= xtime(x))
        x ^= ((x << 1) ^ (0x1B if x & 0x80 else 0)) & 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    def inv(b: int) -> int:
        if b == 0:
            return 0
        return exp[255 - log[b]]

    sbox = [0] * 256
    for i in range(256):
        b = inv(i)
        # Affine transformation.
        res = 0
        for shift in (0, 1, 2, 3, 4):
            res ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[i] = res ^ 0x63
    return sbox


SBOX: List[int] = _build_sbox()
INV_SBOX: List[int] = [0] * 256
for _i, _v in enumerate(SBOX):
    INV_SBOX[_v] = _i


def _xtime(b: int) -> int:
    return ((b << 1) ^ (0x1B if b & 0x80 else 0)) & 0xFF


def _gmul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) (Russian peasant algorithm)."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a = _xtime(a)
    return result


# Encryption T-tables: Te0..Te3 (32-bit entries, big-endian byte order).
TE0: List[int] = [0] * 256
TE1: List[int] = [0] * 256
TE2: List[int] = [0] * 256
TE3: List[int] = [0] * 256
for _x in range(256):
    _s = SBOX[_x]
    _t = (_gmul(_s, 2) << 24) | (_s << 16) | (_s << 8) | _gmul(_s, 3)
    TE0[_x] = _t
    TE1[_x] = ((_t >> 8) | (_t << 24)) & 0xFFFFFFFF
    TE2[_x] = ((_t >> 16) | (_t << 16)) & 0xFFFFFFFF
    TE3[_x] = ((_t >> 24) | (_t << 8)) & 0xFFFFFFFF

# GF(2^8) multiplication tables for InvMixColumns.
MUL9: List[int] = [_gmul(_x, 9) for _x in range(256)]
MUL11: List[int] = [_gmul(_x, 11) for _x in range(256)]
MUL13: List[int] = [_gmul(_x, 13) for _x in range(256)]
MUL14: List[int] = [_gmul(_x, 14) for _x in range(256)]

RCON: List[int] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80,
                   0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]

_VALID_KEY_SIZES = (16, 24, 32)


class AES:
    """AES block cipher for a single fixed key.

    Parameters
    ----------
    key:
        16, 24 or 32 bytes (AES-128/192/256).
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in _VALID_KEY_SIZES:
            raise KeySizeError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
        self._key = bytes(key)
        self._round_keys = self._expand_key(self._key)
        self.rounds = len(self._round_keys) // 4 - 1

    @property
    def key(self) -> bytes:
        """The raw key this instance was constructed with."""
        return self._key

    @property
    def key_size(self) -> int:
        """Key length in bytes (16, 24 or 32)."""
        return len(self._key)

    # -- key schedule -------------------------------------------------------

    @staticmethod
    def _expand_key(key: bytes) -> List[int]:
        """Expand the key into 4*(rounds+1) 32-bit round-key words."""
        nk = len(key) // 4
        rounds = {4: 10, 6: 12, 8: 14}[nk]
        words: List[int] = [int.from_bytes(key[4 * i:4 * i + 4], "big")
                            for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = words[i - 1]
            if i % nk == 0:
                # RotWord + SubWord + Rcon
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
                temp = ((SBOX[(temp >> 24) & 0xFF] << 24)
                        | (SBOX[(temp >> 16) & 0xFF] << 16)
                        | (SBOX[(temp >> 8) & 0xFF] << 8)
                        | SBOX[temp & 0xFF])
                temp ^= RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = ((SBOX[(temp >> 24) & 0xFF] << 24)
                        | (SBOX[(temp >> 16) & 0xFF] << 16)
                        | (SBOX[(temp >> 8) & 0xFF] << 8)
                        | SBOX[temp & 0xFF])
            words.append(words[i - nk] ^ temp)
        return words

    # -- block operations ---------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise DataSizeError(f"AES block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        rounds = self.rounds
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]

        te0, te1, te2, te3 = TE0, TE1, TE2, TE3
        k = 4
        for _ in range(rounds - 1):
            t0 = (te0[(s0 >> 24) & 0xFF] ^ te1[(s1 >> 16) & 0xFF]
                  ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ rk[k])
            t1 = (te0[(s1 >> 24) & 0xFF] ^ te1[(s2 >> 16) & 0xFF]
                  ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ rk[k + 1])
            t2 = (te0[(s2 >> 24) & 0xFF] ^ te1[(s3 >> 16) & 0xFF]
                  ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ rk[k + 2])
            t3 = (te0[(s3 >> 24) & 0xFF] ^ te1[(s0 >> 16) & 0xFF]
                  ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ rk[k + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4

        sb = SBOX
        o0 = ((sb[(s0 >> 24) & 0xFF] << 24) | (sb[(s1 >> 16) & 0xFF] << 16)
              | (sb[(s2 >> 8) & 0xFF] << 8) | sb[s3 & 0xFF]) ^ rk[k]
        o1 = ((sb[(s1 >> 24) & 0xFF] << 24) | (sb[(s2 >> 16) & 0xFF] << 16)
              | (sb[(s3 >> 8) & 0xFF] << 8) | sb[s0 & 0xFF]) ^ rk[k + 1]
        o2 = ((sb[(s2 >> 24) & 0xFF] << 24) | (sb[(s3 >> 16) & 0xFF] << 16)
              | (sb[(s0 >> 8) & 0xFF] << 8) | sb[s1 & 0xFF]) ^ rk[k + 2]
        o3 = ((sb[(s3 >> 24) & 0xFF] << 24) | (sb[(s0 >> 16) & 0xFF] << 16)
              | (sb[(s1 >> 8) & 0xFF] << 8) | sb[s2 & 0xFF]) ^ rk[k + 3]
        return (o0.to_bytes(4, "big") + o1.to_bytes(4, "big")
                + o2.to_bytes(4, "big") + o3.to_bytes(4, "big"))

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise DataSizeError(f"AES block must be 16 bytes, got {len(block)}")
        rounds = self.rounds
        rk = self._round_keys
        state = list(block)

        # Initial AddRoundKey with the last round key.
        self._add_round_key(state, rk, rounds)
        inv_sbox = INV_SBOX
        for rnd in range(rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            state = [inv_sbox[b] for b in state]
            self._add_round_key(state, rk, rnd)
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        state = [inv_sbox[b] for b in state]
        self._add_round_key(state, rk, 0)
        return bytes(state)

    # -- decryption helpers (column-major byte state) -----------------------

    @staticmethod
    def _add_round_key(state: List[int], rk: Sequence[int], rnd: int) -> None:
        for col in range(4):
            word = rk[4 * rnd + col]
            state[4 * col + 0] ^= (word >> 24) & 0xFF
            state[4 * col + 1] ^= (word >> 16) & 0xFF
            state[4 * col + 2] ^= (word >> 8) & 0xFF
            state[4 * col + 3] ^= word & 0xFF

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> List[int]:
        out = [0] * 16
        # state is column-major: state[4*c + r]
        for col in range(4):
            for row in range(4):
                out[4 * ((col + row) % 4) + row] = state[4 * col + row]
        return out

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> List[int]:
        out = [0] * 16
        m9, m11, m13, m14 = MUL9, MUL11, MUL13, MUL14
        for col in range(4):
            a0, a1, a2, a3 = state[4 * col:4 * col + 4]
            out[4 * col + 0] = m14[a0] ^ m11[a1] ^ m13[a2] ^ m9[a3]
            out[4 * col + 1] = m9[a0] ^ m14[a1] ^ m11[a2] ^ m13[a3]
            out[4 * col + 2] = m13[a0] ^ m9[a1] ^ m14[a2] ^ m11[a3]
            out[4 * col + 3] = m11[a0] ^ m13[a1] ^ m9[a2] ^ m14[a3]
        return out

    # -- convenience --------------------------------------------------------

    def encrypt_ecb(self, data: bytes) -> bytes:
        """ECB-encrypt a multiple of 16 bytes (building block for modes)."""
        if len(data) % BLOCK_SIZE:
            raise DataSizeError("ECB input must be a multiple of 16 bytes")
        return b"".join(self.encrypt_block(data[i:i + BLOCK_SIZE])
                        for i in range(0, len(data), BLOCK_SIZE))

    def decrypt_ecb(self, data: bytes) -> bytes:
        """ECB-decrypt a multiple of 16 bytes."""
        if len(data) % BLOCK_SIZE:
            raise DataSizeError("ECB input must be a multiple of 16 bytes")
        return b"".join(self.decrypt_block(data[i:i + BLOCK_SIZE])
                        for i in range(0, len(data), BLOCK_SIZE))
