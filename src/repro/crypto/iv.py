"""IV (tweak) generation policies for sector encryption.

The choice of IV policy is exactly what the paper is about:

* :class:`Plain64IV` — the LBA, little-endian, zero padded.  This is
  ``aes-xts-plain64``, the LUKS2 default and the paper's baseline.  It is
  deterministic across overwrites.
* :class:`EssivIV` — the LBA encrypted under a hash of the volume key
  (dm-crypt's ``essiv:sha256``).  Still deterministic across overwrites,
  but hides the LBA structure.
* :class:`RandomIV` — a fresh random IV drawn for every sector *write*
  (the paper's proposal).  Requires per-sector metadata to persist the IV.
* :class:`WriteCounterIV` — the per-sector overwrite counter mixed with the
  LBA, following Zhang et al. [24] (FTL-integrated encryption).  Also
  requires per-sector metadata (the counter), included as a point of
  comparison.

All policies emit 16-byte IVs suitable as XTS tweaks or (truncated /
expanded) GCM nonces.  Policies that need persistence report it via
:attr:`IVPolicy.requires_metadata` so the encryption formats can refuse
an impossible combination (e.g. random IVs on the metadata-less baseline).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from .aes import AES
from .drbg import RandomSource, default_random_source
from ..errors import ConfigurationError
from ..util import bounded_cache_get

IV_SIZE = 16

#: derived-IV cipher objects, keyed by their derived key.  Expanding an AES
#: key schedule costs far more than encrypting the one block an ESSIV needs,
#: and every ``make_codec``/``load_encryption`` call used to rebuild it; the
#: cache shares one schedule per key across policy instances.
_DERIVED_CIPHER_CACHE: Dict[bytes, AES] = {}
_DERIVED_CIPHER_CACHE_MAX = 64


def _derived_cipher(key: bytes) -> AES:
    """Return a cached AES instance for a derived (e.g. ESSIV salt) key."""
    return bounded_cache_get(_DERIVED_CIPHER_CACHE, key, lambda: AES(key),
                             _DERIVED_CIPHER_CACHE_MAX)[0]


class IVPolicy:
    """Interface for producing the IV used to encrypt one sector."""

    #: Whether the IV must be persisted alongside the sector to decrypt later.
    requires_metadata: bool = False
    #: Policy name used by the format headers.
    name: str = "abstract"

    def iv_for_write(self, lba: int, snapshot_id: int = 0) -> bytes:
        """Return the IV to use when *writing* sector ``lba``."""
        raise NotImplementedError

    def iv_for_read(self, lba: int, stored: Optional[bytes],
                    snapshot_id: int = 0) -> bytes:
        """Return the IV to use when *reading* sector ``lba``.

        ``stored`` is the persisted per-sector metadata (or ``None`` when the
        format keeps none).
        """
        raise NotImplementedError

    def is_deterministic(self) -> bool:
        """True if overwriting the same LBA reuses the same IV."""
        return not self.requires_metadata


class Plain64IV(IVPolicy):
    """LBA as a little-endian 64-bit integer, zero padded to 16 bytes."""

    name = "plain64"

    def iv_for_write(self, lba: int, snapshot_id: int = 0) -> bytes:
        return (lba & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little") + b"\x00" * 8

    def iv_for_read(self, lba: int, stored: Optional[bytes],
                    snapshot_id: int = 0) -> bytes:
        return self.iv_for_write(lba, snapshot_id)


class EssivIV(IVPolicy):
    """ESSIV: IV = AES_{SHA256(volume key)}(LBA).

    The salt cipher is fetched from the per-key cache, so re-deriving the
    policy (every format/load, one per image) reuses the expanded key
    schedule instead of rebuilding it.
    """

    name = "essiv"

    def __init__(self, volume_key: bytes) -> None:
        if not volume_key:
            raise ConfigurationError("ESSIV requires a volume key")
        salt = hashlib.sha256(volume_key).digest()
        self._cipher = _derived_cipher(salt)

    def iv_for_write(self, lba: int, snapshot_id: int = 0) -> bytes:
        plain = (lba & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little") + b"\x00" * 8
        return self._cipher.encrypt_block(plain)

    def iv_for_read(self, lba: int, stored: Optional[bytes],
                    snapshot_id: int = 0) -> bytes:
        return self.iv_for_write(lba, snapshot_id)


class RandomIV(IVPolicy):
    """Fresh random IV per sector write — the paper's proposal (§2.2).

    The IV mixes the random value with the LBA (and optionally the snapshot
    id) so that replaying a ciphertext at a different LBA or from a
    different snapshot is not possible, exactly as the paper prescribes
    ("one should also include the sector number as part of the IV in order
    to avoid replay attacks", footnote 3 extends this to snapshots).

    Layout of the 16-byte IV::

        bytes 0..7   random nonce
        bytes 8..13  LBA (48 bits, little endian)
        bytes 14..15 snapshot id (16 bits, little endian)

    Only the 8 random bytes need to be persisted; the LBA and snapshot id
    are re-derivable at read time.  Formats may nevertheless persist the
    whole 16 bytes for simplicity; both choices are supported via
    :attr:`stored_size`.
    """

    name = "random"
    requires_metadata = True

    def __init__(self, random_source: Optional[RandomSource] = None,
                 stored_size: int = 16, bind_lba: bool = True,
                 bind_snapshot: bool = True) -> None:
        if stored_size not in (8, 16):
            raise ConfigurationError("stored_size must be 8 or 16 bytes")
        self._random = random_source or default_random_source()
        self.stored_size = stored_size
        self.bind_lba = bind_lba
        self.bind_snapshot = bind_snapshot
        self.ivs_generated = 0

    def _compose(self, nonce: bytes, lba: int, snapshot_id: int) -> bytes:
        lba_part = ((lba & 0xFFFFFFFFFFFF).to_bytes(6, "little")
                    if self.bind_lba else b"\x00" * 6)
        snap_part = ((snapshot_id & 0xFFFF).to_bytes(2, "little")
                     if self.bind_snapshot else b"\x00" * 2)
        return nonce + lba_part + snap_part

    def iv_for_write(self, lba: int, snapshot_id: int = 0) -> bytes:
        nonce = self._random.read(8)
        self.ivs_generated += 1
        return self._compose(nonce, lba, snapshot_id)

    def metadata_for_iv(self, iv: bytes) -> bytes:
        """Extract the bytes that must be persisted for a freshly drawn IV."""
        if self.stored_size == 16:
            return iv
        return iv[:8]

    def iv_for_read(self, lba: int, stored: Optional[bytes],
                    snapshot_id: int = 0) -> bytes:
        if stored is None:
            raise ConfigurationError(
                "random IV policy requires stored per-sector metadata")
        if len(stored) == 16:
            return stored
        if len(stored) == 8:
            return self._compose(stored, lba, snapshot_id)
        raise ConfigurationError(
            f"stored IV must be 8 or 16 bytes, got {len(stored)}")

    def is_deterministic(self) -> bool:
        return False


class WriteCounterIV(IVPolicy):
    """Per-sector overwrite counter mixed with the LBA (Zhang et al. [24]).

    Deterministic given the counter, but the counter changes on every
    overwrite so IVs never repeat.  The counter (8 bytes) is the per-sector
    metadata that must be persisted.
    """

    name = "write-counter"
    requires_metadata = True
    stored_size = 8

    def __init__(self) -> None:
        self._counters: Dict[int, int] = {}

    def iv_for_write(self, lba: int, snapshot_id: int = 0) -> bytes:
        count = self._counters.get(lba, 0) + 1
        self._counters[lba] = count
        return (count.to_bytes(8, "little")
                + (lba & 0xFFFFFFFFFFFF).to_bytes(6, "little")
                + (snapshot_id & 0xFFFF).to_bytes(2, "little"))

    def metadata_for_iv(self, iv: bytes) -> bytes:
        """The persisted metadata is the 8-byte counter."""
        return iv[:8]

    def iv_for_read(self, lba: int, stored: Optional[bytes],
                    snapshot_id: int = 0) -> bytes:
        if stored is None or len(stored) < 8:
            raise ConfigurationError(
                "write-counter IV policy requires an 8-byte stored counter")
        return (stored[:8]
                + (lba & 0xFFFFFFFFFFFF).to_bytes(6, "little")
                + (snapshot_id & 0xFFFF).to_bytes(2, "little"))

    def is_deterministic(self) -> bool:
        return False


def make_iv_policy(name: str, volume_key: bytes = b"",
                   random_source: Optional[RandomSource] = None) -> IVPolicy:
    """Factory used by the encryption format headers."""
    if name == Plain64IV.name:
        return Plain64IV()
    if name == EssivIV.name:
        return EssivIV(volume_key)
    if name == RandomIV.name:
        return RandomIV(random_source)
    if name == WriteCounterIV.name:
        return WriteCounterIV()
    raise ConfigurationError(f"unknown IV policy {name!r}")
