"""Cipher suite registry.

An encryption format header names a cipher suite by string (the same way a
LUKS2 header stores ``aes-xts-plain64``).  This registry maps those names to
constructors so the RBD encryption layer never hard-codes a cipher, and so
the benchmark harness can swap the pure-Python AES for the fast simulation
cipher without touching any format code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from .fastcipher import Blake2Xts, NullCipher
from .wideblock import WideBlockCipher
from .xts import XTS
from ..errors import ConfigurationError


@dataclass(frozen=True)
class CipherSuite:
    """Description of a sector cipher available to the encryption formats."""

    name: str
    key_size: int           # bytes of key material the format must derive
    factory: Callable[[bytes], object]
    standard: bool          # True for real standardised algorithms
    wide_block: bool = False

    def create(self, key: bytes) -> object:
        """Instantiate the cipher with ``key`` (length must be key_size)."""
        if len(key) != self.key_size:
            raise ConfigurationError(
                f"cipher suite {self.name!r} needs a {self.key_size}-byte key, "
                f"got {len(key)}")
        return self.factory(key)


_REGISTRY: Dict[str, CipherSuite] = {}


def register_suite(suite: CipherSuite) -> None:
    """Register a cipher suite (overwrites an existing entry of same name)."""
    _REGISTRY[suite.name] = suite


def get_suite(name: str) -> CipherSuite:
    """Look up a cipher suite by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(f"unknown cipher suite {name!r}") from None


def available_suites() -> Dict[str, CipherSuite]:
    """Return a copy of the registry, keyed by suite name."""
    return dict(_REGISTRY)


# Built-in suites ------------------------------------------------------------

register_suite(CipherSuite("aes-xts-128", 32, XTS, standard=True))
register_suite(CipherSuite("aes-xts-256", 64, XTS, standard=True))
register_suite(CipherSuite("wide-block-256", 64, WideBlockCipher,
                           standard=False, wide_block=True))
register_suite(CipherSuite("blake2-xts-sim", 32, Blake2Xts, standard=False))
register_suite(CipherSuite("null-sim", 16, NullCipher, standard=False))

#: Suite names in the order they should appear in documentation/UX.
DEFAULT_SUITE = "aes-xts-256"
SIMULATION_SUITE = "blake2-xts-sim"
