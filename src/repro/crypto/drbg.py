"""Deterministic random bit generator (HMAC-DRBG, SP 800-90A style).

Random IVs are the heart of the paper's design.  The library never calls
``os.urandom`` directly from the encryption paths; instead every component
that needs randomness receives a :class:`RandomSource`.  Two implementations
are provided:

* :class:`HmacDrbg` — deterministic, seedable; used throughout the tests and
  benchmarks so that every run is exactly reproducible.
* :class:`OsRandomSource` — thin wrapper over ``os.urandom`` for users that
  want real entropy.
"""

from __future__ import annotations

import hmac
import hashlib
import os


class RandomSource:
    """Interface for byte-producing randomness sources."""

    def read(self, nbytes: int) -> bytes:
        """Return ``nbytes`` of (pseudo) random data."""
        raise NotImplementedError

    def read_u64(self) -> int:
        """Return a uniformly distributed unsigned 64-bit integer."""
        return int.from_bytes(self.read(8), "big")


class OsRandomSource(RandomSource):
    """Operating-system entropy (``os.urandom``)."""

    def read(self, nbytes: int) -> bytes:
        return os.urandom(nbytes)


class HmacDrbg(RandomSource):
    """HMAC-SHA-256 deterministic random bit generator.

    This follows the core update/generate loop of NIST SP 800-90A HMAC_DRBG
    (without the personalisation/prediction-resistance machinery, which the
    reproduction does not need).
    """

    def __init__(self, seed: bytes) -> None:
        if not seed:
            raise ValueError("HmacDrbg seed must not be empty")
        self._k = b"\x00" * 32
        self._v = b"\x01" * 32
        self._update(seed)
        self.bytes_generated = 0

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        return hmac.new(key, data, hashlib.sha256).digest()

    def _update(self, provided: bytes = b"") -> None:
        self._k = self._hmac(self._k, self._v + b"\x00" + provided)
        self._v = self._hmac(self._k, self._v)
        if provided:
            self._k = self._hmac(self._k, self._v + b"\x01" + provided)
            self._v = self._hmac(self._k, self._v)

    def reseed(self, seed: bytes) -> None:
        """Mix additional entropy into the generator state."""
        self._update(seed)

    def read(self, nbytes: int) -> bytes:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        out = bytearray()
        while len(out) < nbytes:
            self._v = self._hmac(self._k, self._v)
            out += self._v
        self._update()
        self.bytes_generated += nbytes
        return bytes(out[:nbytes])


def default_random_source(seed: bytes = b"repro-default-seed") -> RandomSource:
    """The deterministic source used when callers do not supply one."""
    return HmacDrbg(seed)
