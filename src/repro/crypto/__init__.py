"""Cryptographic substrate: AES, XTS, CBC, CTR, GCM, wide-block, IV policies,
KDFs, MACs and deterministic randomness.

Everything here is implemented from scratch (no third-party crypto
libraries) and validated against published test vectors in
``tests/crypto/``.  See DESIGN.md §3 for the inventory.
"""

from .aes import AES, BLOCK_SIZE
from .cbc import CBC
from .ctr import CTR
from .drbg import HmacDrbg, OsRandomSource, RandomSource, default_random_source
from .fastcipher import Blake2Xts, NullCipher
from .gcm import GCM, GCMResult, NONCE_SIZE, TAG_SIZE
from .iv import (EssivIV, IVPolicy, Plain64IV, RandomIV, WriteCounterIV,
                 make_iv_policy, IV_SIZE)
from .kdf import (aes_key_unwrap, aes_key_wrap, derive_subkey, hkdf,
                  hkdf_expand, hkdf_extract, pbkdf2)
from .mac import DEFAULT_TAG_SIZE, SectorMac
from .suite import (CipherSuite, DEFAULT_SUITE, SIMULATION_SUITE,
                    available_suites, get_suite, register_suite)
from .wideblock import WideBlockCipher
from .xts import SUB_BLOCK_SIZE, XTS

__all__ = [
    "AES", "BLOCK_SIZE", "CBC", "CTR", "GCM", "GCMResult", "NONCE_SIZE",
    "TAG_SIZE", "HmacDrbg", "OsRandomSource", "RandomSource",
    "default_random_source", "Blake2Xts", "NullCipher", "EssivIV", "IVPolicy",
    "Plain64IV", "RandomIV", "WriteCounterIV", "make_iv_policy", "IV_SIZE",
    "aes_key_unwrap", "aes_key_wrap", "derive_subkey", "hkdf", "hkdf_expand",
    "hkdf_extract", "pbkdf2", "DEFAULT_TAG_SIZE", "SectorMac", "CipherSuite",
    "DEFAULT_SUITE", "SIMULATION_SUITE", "available_suites", "get_suite",
    "register_suite", "WideBlockCipher", "SUB_BLOCK_SIZE", "XTS",
]
