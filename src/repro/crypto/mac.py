"""Per-sector message authentication codes.

The paper lists authentication (a per-sector MAC) as the second use of
per-sector metadata (§1 item 2, §2.2).  The ``integrity`` and ``gcm_auth``
encryption formats use these helpers; the MAC always covers the ciphertext,
the LBA and the IV so that ciphertexts cannot be replayed at other
addresses.
"""

from __future__ import annotations

import hashlib
import hmac

from ..errors import AuthenticationError
from ..util import constant_time_compare

#: Default truncated tag length (matches dm-integrity's common configuration).
DEFAULT_TAG_SIZE = 16


class SectorMac:
    """HMAC-SHA-256 over (lba, iv, ciphertext), truncated to ``tag_size``."""

    def __init__(self, key: bytes, tag_size: int = DEFAULT_TAG_SIZE) -> None:
        if not key:
            raise ValueError("MAC key must not be empty")
        if not 8 <= tag_size <= 32:
            raise ValueError("tag size must be between 8 and 32 bytes")
        self._key = bytes(key)
        self.tag_size = tag_size

    def _compute(self, lba: int, iv: bytes, ciphertext: bytes) -> bytes:
        msg = lba.to_bytes(8, "little") + bytes([len(iv)]) + iv + ciphertext
        return hmac.new(self._key, msg, hashlib.sha256).digest()[:self.tag_size]

    def tag(self, lba: int, iv: bytes, ciphertext: bytes) -> bytes:
        """Produce the truncated authentication tag for one sector."""
        return self._compute(lba, iv, ciphertext)

    def verify(self, lba: int, iv: bytes, ciphertext: bytes, tag: bytes) -> None:
        """Verify a tag; raises :class:`AuthenticationError` on mismatch."""
        expected = self._compute(lba, iv, ciphertext)
        if not constant_time_compare(expected, tag):
            raise AuthenticationError(
                f"sector MAC verification failed for LBA {lba}")
