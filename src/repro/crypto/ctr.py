"""AES-CTR keystream mode (building block for GCM and the wide-block mode)."""

from __future__ import annotations

from .aes import AES, BLOCK_SIZE
from ..errors import IVSizeError
from ..util import xor_bytes


def _inc32(block: bytes) -> bytes:
    """Increment the last 32 bits of a 16-byte counter block (GCM style)."""
    prefix, counter = block[:12], int.from_bytes(block[12:], "big")
    counter = (counter + 1) & 0xFFFFFFFF
    return prefix + counter.to_bytes(4, "big")


class CTR:
    """AES in counter mode.

    Two counter conventions are supported:

    * ``inc32`` (default): only the final 32 bits are incremented, exactly as
      GCM requires.
    * full 128-bit increment (``wide_counter=True``): used by the
      HCTR-style wide-block cipher where the keystream may exceed 2^32
      blocks in principle.
    """

    def __init__(self, key: bytes, wide_counter: bool = False) -> None:
        self._cipher = AES(key)
        self._wide_counter = wide_counter

    def keystream(self, counter_block: bytes, length: int) -> bytes:
        """Generate ``length`` keystream bytes starting at ``counter_block``.

        All counter blocks are laid out up front and encrypted through one
        :meth:`~repro.crypto.aes.AES.encrypt_blocks` kernel call, so a whole
        sector's keystream costs one bulk call instead of one Python call
        per 16-byte block.
        """
        if len(counter_block) != BLOCK_SIZE:
            raise IVSizeError("CTR counter block must be 16 bytes")
        if length <= 0:
            return b""
        block_count = -(-length // BLOCK_SIZE)
        if self._wide_counter:
            start = int.from_bytes(counter_block, "big")
            mask = (1 << 128) - 1
            counters = b"".join(((start + i) & mask).to_bytes(16, "big")
                                for i in range(block_count))
        else:
            prefix = bytes(counter_block[:12])
            start = int.from_bytes(counter_block[12:], "big")
            counters = b"".join(
                prefix + ((start + i) & 0xFFFFFFFF).to_bytes(4, "big")
                for i in range(block_count))
        return self._cipher.encrypt_blocks(counters)[:length]

    def xcrypt(self, counter_block: bytes, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` (CTR is an involution)."""
        return xor_bytes(data, self.keystream(counter_block, len(data)))
