"""AES-CTR keystream mode (building block for GCM and the wide-block mode)."""

from __future__ import annotations

from .aes import AES, BLOCK_SIZE
from ..errors import IVSizeError
from ..util import xor_bytes


def _inc32(block: bytes) -> bytes:
    """Increment the last 32 bits of a 16-byte counter block (GCM style)."""
    prefix, counter = block[:12], int.from_bytes(block[12:], "big")
    counter = (counter + 1) & 0xFFFFFFFF
    return prefix + counter.to_bytes(4, "big")


class CTR:
    """AES in counter mode.

    Two counter conventions are supported:

    * ``inc32`` (default): only the final 32 bits are incremented, exactly as
      GCM requires.
    * full 128-bit increment (``wide_counter=True``): used by the
      HCTR-style wide-block cipher where the keystream may exceed 2^32
      blocks in principle.
    """

    def __init__(self, key: bytes, wide_counter: bool = False) -> None:
        self._cipher = AES(key)
        self._wide_counter = wide_counter

    def keystream(self, counter_block: bytes, length: int) -> bytes:
        """Generate ``length`` keystream bytes starting at ``counter_block``."""
        if len(counter_block) != BLOCK_SIZE:
            raise IVSizeError("CTR counter block must be 16 bytes")
        out = bytearray()
        block = counter_block
        while len(out) < length:
            out += self._cipher.encrypt_block(block)
            if self._wide_counter:
                value = (int.from_bytes(block, "big") + 1) & ((1 << 128) - 1)
                block = value.to_bytes(16, "big")
            else:
                block = _inc32(block)
        return bytes(out[:length])

    def xcrypt(self, counter_block: bytes, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` (CTR is an involution)."""
        return xor_bytes(data, self.keystream(counter_block, len(data)))
