"""AES-XTS (IEEE 1619 / NIST SP 800-38E) — the narrow-block mode used by
LUKS2, dm-crypt, BitLocker and Ceph RBD client-side encryption.

XTS is a *tweakable*, *length-preserving* mode: the caller supplies a
16-byte tweak (in disk encryption: the sector number, or — in this paper's
design — a random value persisted as per-sector metadata).  Each 16-byte
sub-block of a sector is encrypted independently after being masked with a
tweak-derived value, which is exactly why overwrites under a repeated tweak
leak which sub-blocks changed (§2.1 of the paper); see
:mod:`repro.attacks.xts_overwrite` for the demonstration.

Ciphertext stealing is implemented, so any input of at least 16 bytes is
supported (disk sectors are always a multiple of 16).
"""

from __future__ import annotations

from .aes import AES, BLOCK_SIZE
from .gf128 import xts_mul_alpha
from ..errors import DataSizeError, IVSizeError, KeySizeError
from ..util import xor_bytes

#: Size of the XTS sub-block ("narrow block") in bytes.
SUB_BLOCK_SIZE = BLOCK_SIZE


class XTS:
    """AES-XTS cipher bound to a data key and a tweak key.

    Parameters
    ----------
    key:
        The concatenation of the data key and the tweak key.  32 bytes
        selects AES-128-XTS, 64 bytes selects AES-256-XTS (matching the
        ``aes-xts-plain64`` key layout used by LUKS).
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (32, 64):
            raise KeySizeError(
                f"XTS key must be 32 or 64 bytes (two AES keys), got {len(key)}")
        half = len(key) // 2
        self._data_cipher = AES(key[:half])
        self._tweak_cipher = AES(key[half:])
        self._key_size = half

    @property
    def key_size(self) -> int:
        """Size of each underlying AES key in bytes (16 or 32)."""
        return self._key_size

    # -- internal -----------------------------------------------------------

    def _initial_tweak(self, tweak: bytes) -> bytes:
        if len(tweak) != 16:
            raise IVSizeError(f"XTS tweak must be 16 bytes, got {len(tweak)}")
        return self._tweak_cipher.encrypt_block(tweak)

    def _check_length(self, data: bytes) -> None:
        if len(data) < SUB_BLOCK_SIZE:
            raise DataSizeError(
                f"XTS requires at least {SUB_BLOCK_SIZE} bytes, got {len(data)}")

    # -- public API ---------------------------------------------------------

    def encrypt(self, tweak: bytes, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` under ``tweak``; output has the same length."""
        self._check_length(plaintext)
        t = self._initial_tweak(tweak)
        full_blocks, tail = divmod(len(plaintext), SUB_BLOCK_SIZE)
        enc = self._data_cipher.encrypt_block

        out = bytearray()
        tweaks = []
        for _ in range(full_blocks):
            tweaks.append(t)
            t = xts_mul_alpha(t)
        final_tweak = t  # tweak for the stolen (partial) block, if any

        limit = full_blocks if tail == 0 else full_blocks - 1
        for i in range(limit):
            block = plaintext[i * 16:(i + 1) * 16]
            out += xor_bytes(enc(xor_bytes(block, tweaks[i])), tweaks[i])

        if tail == 0:
            return bytes(out)

        # Ciphertext stealing: encrypt the last full block, then borrow.
        i = full_blocks - 1
        block = plaintext[i * 16:(i + 1) * 16]
        cc = xor_bytes(enc(xor_bytes(block, tweaks[i])), tweaks[i])
        partial = plaintext[full_blocks * 16:]
        cm = cc[:tail]                      # becomes the final partial output
        pp = partial + cc[tail:]            # padded with stolen ciphertext
        cp = xor_bytes(enc(xor_bytes(pp, final_tweak)), final_tweak)
        out += cp + cm
        return bytes(out)

    def decrypt(self, tweak: bytes, ciphertext: bytes) -> bytes:
        """Decrypt ``ciphertext`` under ``tweak``."""
        self._check_length(ciphertext)
        t = self._initial_tweak(tweak)
        full_blocks, tail = divmod(len(ciphertext), SUB_BLOCK_SIZE)
        dec = self._data_cipher.decrypt_block

        tweaks = []
        for _ in range(full_blocks):
            tweaks.append(t)
            t = xts_mul_alpha(t)
        final_tweak = t

        out = bytearray()
        limit = full_blocks if tail == 0 else full_blocks - 1
        for i in range(limit):
            block = ciphertext[i * 16:(i + 1) * 16]
            out += xor_bytes(dec(xor_bytes(block, tweaks[i])), tweaks[i])

        if tail == 0:
            return bytes(out)

        # Undo ciphertext stealing.  The penultimate on-wire block was
        # encrypted under the *final* tweak.
        i = full_blocks - 1
        cp = ciphertext[i * 16:(i + 1) * 16]
        cm = ciphertext[full_blocks * 16:]
        pp = xor_bytes(dec(xor_bytes(cp, final_tweak)), final_tweak)
        cc = cm + pp[tail:]
        block = xor_bytes(dec(xor_bytes(cc, tweaks[i])), tweaks[i])
        out += block + pp[:tail]
        return bytes(out)

    # -- sub-block helpers used by the attack toolkit ------------------------

    def encrypt_sub_block(self, tweak: bytes, index: int, sub_block: bytes) -> bytes:
        """Encrypt a single 16-byte sub-block at position ``index`` of a sector.

        Exposed so the security-analysis examples can show that XTS
        sub-blocks are independent: re-encrypting one sub-block in place
        yields exactly the bytes found at that position in the full-sector
        ciphertext.
        """
        if len(sub_block) != SUB_BLOCK_SIZE:
            raise DataSizeError("sub-block must be 16 bytes")
        t = self._initial_tweak(tweak)
        for _ in range(index):
            t = xts_mul_alpha(t)
        enc = self._data_cipher.encrypt_block
        return xor_bytes(enc(xor_bytes(sub_block, t)), t)
