"""AES-XTS (IEEE 1619 / NIST SP 800-38E) — the narrow-block mode used by
LUKS2, dm-crypt, BitLocker and Ceph RBD client-side encryption.

XTS is a *tweakable*, *length-preserving* mode: the caller supplies a
16-byte tweak (in disk encryption: the sector number, or — in this paper's
design — a random value persisted as per-sector metadata).  Each 16-byte
sub-block of a sector is encrypted independently after being masked with a
tweak-derived value, which is exactly why overwrites under a repeated tweak
leak which sub-blocks changed (§2.1 of the paper); see
:mod:`repro.attacks.xts_overwrite` for the demonstration.

Ciphertext stealing is implemented, so any input of at least 16 bytes is
supported (disk sectors are always a multiple of 16).

Two sector paths coexist, selected by the ``batched`` constructor knob:

* the **batched path** (default) computes the whole per-sector tweak chain
  once in the integer domain (:func:`repro.crypto.gf128.xts_tweak_chain`),
  applies both tweak maskings as two sector-wide integer XORs and runs the
  AES layer through :meth:`repro.crypto.aes.AES.encrypt_blocks` — one bulk
  kernel call per sector instead of one Python call per 16-byte sub-block;
* the **scalar path** (``batched=False``) chains :func:`xts_mul_alpha` per
  sub-block exactly as before; it is kept as the reference the equivalence
  tests and benchmarks compare against.

Both paths are bit-identical for every input size, ciphertext stealing
included (``tests/crypto/test_batched_kernels.py``).
"""

from __future__ import annotations

from .aes import AES, BLOCK_SIZE, MIN_BATCH_BLOCKS
from .gf128 import xts_mul_alpha, xts_mul_alpha_pow, xts_tweak_chain
from ..errors import DataSizeError, IVSizeError, KeySizeError
from ..util import xor_bytes

#: Size of the XTS sub-block ("narrow block") in bytes.
SUB_BLOCK_SIZE = BLOCK_SIZE


class XTS:
    """AES-XTS cipher bound to a data key and a tweak key.

    Parameters
    ----------
    key:
        The concatenation of the data key and the tweak key.  32 bytes
        selects AES-128-XTS, 64 bytes selects AES-256-XTS (matching the
        ``aes-xts-plain64`` key layout used by LUKS).
    batched:
        Use the batched sector kernel (default).  ``False`` selects the
        scalar one-sub-block-per-call reference path.
    """

    def __init__(self, key: bytes, batched: bool = True) -> None:
        if len(key) not in (32, 64):
            raise KeySizeError(
                f"XTS key must be 32 or 64 bytes (two AES keys), got {len(key)}")
        half = len(key) // 2
        self._data_cipher = AES(key[:half])
        self._tweak_cipher = AES(key[half:])
        self._key_size = half
        self.batched = batched

    @property
    def key_size(self) -> int:
        """Size of each underlying AES key in bytes (16 or 32)."""
        return self._key_size

    # -- internal -----------------------------------------------------------

    def _initial_tweak(self, tweak: bytes) -> bytes:
        if len(tweak) != 16:
            raise IVSizeError(f"XTS tweak must be 16 bytes, got {len(tweak)}")
        return self._tweak_cipher.encrypt_block(bytes(tweak))

    def _check_length(self, data) -> None:
        if len(data) < SUB_BLOCK_SIZE:
            raise DataSizeError(
                f"XTS requires at least {SUB_BLOCK_SIZE} bytes, got {len(data)}")

    # -- public API ---------------------------------------------------------

    def encrypt(self, tweak: bytes, plaintext) -> bytes:
        """Encrypt ``plaintext`` under ``tweak``; output has the same length.

        ``plaintext`` is any bytes-like object (the zero-copy write path
        hands in memoryviews of the caller's buffers).
        """
        self._check_length(plaintext)
        if self.batched and len(plaintext) >= MIN_BATCH_BLOCKS * 16:
            return self._encrypt_batched(tweak, plaintext)
        return self._encrypt_scalar(tweak, plaintext)

    def decrypt(self, tweak: bytes, ciphertext) -> bytes:
        """Decrypt ``ciphertext`` under ``tweak``."""
        self._check_length(ciphertext)
        if self.batched and len(ciphertext) >= MIN_BATCH_BLOCKS * 16:
            return self._decrypt_batched(tweak, ciphertext)
        return self._decrypt_scalar(tweak, ciphertext)

    # -- batched sector path -------------------------------------------------

    def _masks(self, tweak: bytes, data_len: int):
        """Tweak chain for one sector: (packed masks for the plain sub-
        blocks, byte tweaks of the ciphertext-stealing pair or ``None``)."""
        full_blocks, tail = divmod(data_len, SUB_BLOCK_SIZE)
        count = full_blocks + 1 if tail else full_blocks
        chain = xts_tweak_chain(
            int.from_bytes(self._initial_tweak(tweak), "little"), count)
        limit = full_blocks if tail == 0 else full_blocks - 1
        packed = b"".join(t.to_bytes(16, "little") for t in chain[:limit])
        if tail == 0:
            return packed, None
        return packed, (chain[limit].to_bytes(16, "little"),
                        chain[limit + 1].to_bytes(16, "little"))

    def _encrypt_batched(self, tweak: bytes, plaintext) -> bytes:
        packed, cts_tweaks = self._masks(tweak, len(plaintext))
        size = len(packed)
        mask = int.from_bytes(packed, "big")
        view = memoryview(plaintext)
        whitened = (int.from_bytes(view[:size], "big")
                    ^ mask).to_bytes(size, "big")
        out = (int.from_bytes(self._data_cipher.encrypt_blocks(whitened),
                              "big") ^ mask).to_bytes(size, "big")
        if cts_tweaks is None:
            return out
        # Ciphertext stealing: encrypt the last full block, then borrow.
        last_tweak, final_tweak = cts_tweaks
        enc = self._data_cipher.encrypt_block
        tail = len(plaintext) - size - SUB_BLOCK_SIZE
        block = bytes(view[size:size + SUB_BLOCK_SIZE])
        cc = xor_bytes(enc(xor_bytes(block, last_tweak)), last_tweak)
        partial = bytes(view[size + SUB_BLOCK_SIZE:])
        cm = cc[:tail]                      # becomes the final partial output
        pp = partial + cc[tail:]            # padded with stolen ciphertext
        cp = xor_bytes(enc(xor_bytes(pp, final_tweak)), final_tweak)
        return out + cp + cm

    def _decrypt_batched(self, tweak: bytes, ciphertext) -> bytes:
        packed, cts_tweaks = self._masks(tweak, len(ciphertext))
        size = len(packed)
        mask = int.from_bytes(packed, "big")
        view = memoryview(ciphertext)
        whitened = (int.from_bytes(view[:size], "big")
                    ^ mask).to_bytes(size, "big")
        out = (int.from_bytes(self._data_cipher.decrypt_blocks(whitened),
                              "big") ^ mask).to_bytes(size, "big")
        if cts_tweaks is None:
            return out
        # Undo ciphertext stealing.  The penultimate on-wire block was
        # encrypted under the *final* tweak.
        last_tweak, final_tweak = cts_tweaks
        dec = self._data_cipher.decrypt_block
        tail = len(ciphertext) - size - SUB_BLOCK_SIZE
        cp = bytes(view[size:size + SUB_BLOCK_SIZE])
        cm = bytes(view[size + SUB_BLOCK_SIZE:])
        pp = xor_bytes(dec(xor_bytes(cp, final_tweak)), final_tweak)
        cc = cm + pp[tail:]
        block = xor_bytes(dec(xor_bytes(cc, last_tweak)), last_tweak)
        return out + block + pp[:tail]

    # -- scalar reference path -----------------------------------------------

    def _encrypt_scalar(self, tweak: bytes, plaintext) -> bytes:
        plaintext = bytes(plaintext)
        t = self._initial_tweak(tweak)
        full_blocks, tail = divmod(len(plaintext), SUB_BLOCK_SIZE)
        enc = self._data_cipher.encrypt_block

        out = bytearray()
        tweaks = []
        for _ in range(full_blocks):
            tweaks.append(t)
            t = xts_mul_alpha(t)
        final_tweak = t  # tweak for the stolen (partial) block, if any

        limit = full_blocks if tail == 0 else full_blocks - 1
        for i in range(limit):
            block = plaintext[i * 16:(i + 1) * 16]
            out += xor_bytes(enc(xor_bytes(block, tweaks[i])), tweaks[i])

        if tail == 0:
            return bytes(out)

        # Ciphertext stealing: encrypt the last full block, then borrow.
        i = full_blocks - 1
        block = plaintext[i * 16:(i + 1) * 16]
        cc = xor_bytes(enc(xor_bytes(block, tweaks[i])), tweaks[i])
        partial = plaintext[full_blocks * 16:]
        cm = cc[:tail]                      # becomes the final partial output
        pp = partial + cc[tail:]            # padded with stolen ciphertext
        cp = xor_bytes(enc(xor_bytes(pp, final_tweak)), final_tweak)
        out += cp + cm
        return bytes(out)

    def _decrypt_scalar(self, tweak: bytes, ciphertext) -> bytes:
        ciphertext = bytes(ciphertext)
        t = self._initial_tweak(tweak)
        full_blocks, tail = divmod(len(ciphertext), SUB_BLOCK_SIZE)
        dec = self._data_cipher.decrypt_block

        tweaks = []
        for _ in range(full_blocks):
            tweaks.append(t)
            t = xts_mul_alpha(t)
        final_tweak = t

        out = bytearray()
        limit = full_blocks if tail == 0 else full_blocks - 1
        for i in range(limit):
            block = ciphertext[i * 16:(i + 1) * 16]
            out += xor_bytes(dec(xor_bytes(block, tweaks[i])), tweaks[i])

        if tail == 0:
            return bytes(out)

        # Undo ciphertext stealing.  The penultimate on-wire block was
        # encrypted under the *final* tweak.
        i = full_blocks - 1
        cp = ciphertext[i * 16:(i + 1) * 16]
        cm = ciphertext[full_blocks * 16:]
        pp = xor_bytes(dec(xor_bytes(cp, final_tweak)), final_tweak)
        cc = cm + pp[tail:]
        block = xor_bytes(dec(xor_bytes(cc, tweaks[i])), tweaks[i])
        out += block + pp[:tail]
        return bytes(out)

    # -- sub-block helpers used by the attack toolkit ------------------------

    def encrypt_sub_block(self, tweak: bytes, index: int, sub_block: bytes) -> bytes:
        """Encrypt a single 16-byte sub-block at position ``index`` of a sector.

        Exposed so the security-analysis examples can show that XTS
        sub-blocks are independent: re-encrypting one sub-block in place
        yields exactly the bytes found at that position in the full-sector
        ciphertext.  The tweak jump is a single alpha-power multiplication
        rather than ``index`` chained doublings.
        """
        if len(sub_block) != SUB_BLOCK_SIZE:
            raise DataSizeError("sub-block must be 16 bytes")
        t = xts_mul_alpha_pow(self._initial_tweak(tweak), index)
        enc = self._data_cipher.encrypt_block
        return xor_bytes(enc(xor_bytes(sub_block, t)), t)
