"""Layered clone subsystem: COW image clones with per-layer encryption keys.

The production shape of the paper's design — one encrypted golden image,
thousands of copy-on-write children — reproduced on top of the existing
snapshot machinery:

* :mod:`repro.clone.chain` — protect/clone/open/flatten chain management,
  per-layer LUKS unlock (each layer owns its own volume key), and the
  golden-image fan-out builder the benchmarks use.
* :mod:`repro.clone.layered` — :class:`LayeredImage`, the Image-shaped
  front-end whose reads descend the parent chain via ``snap_set_read``
  and whose writes perform librbd-style atomic copyup.

See ``docs/ARCHITECTURE.md`` ("Cloned images") and
``examples/clone_golden_image.py``.
"""

from .chain import (build_layers, clone_encrypted_image, clone_fanout,
                    clone_image, flatten_image, open_layered_image)
from .layered import CloneLayer, LayeredImage

__all__ = [
    "CloneLayer", "LayeredImage", "build_layers", "clone_encrypted_image",
    "clone_fanout", "clone_image", "flatten_image", "open_layered_image",
]
