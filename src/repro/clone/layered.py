"""The layered image front-end: COW clone chains with per-layer decryption.

:class:`LayeredImage` exposes the same data-path surface as
:class:`~repro.rbd.image.Image` (scalar ``write``/``read`` plus the
vectored ``write_extents``/``read_extents`` the batched engine and the
block cache drive), so it slots between any caller and a clone child
without either side changing — exactly like
:class:`~repro.cache.image.CachedImage`, which may in turn wrap it.

Semantics mirror librbd's layering:

* **Reads** of objects the child has never written descend the parent
  chain: each ancestor layer is an independently opened image, routed to
  its clone-time snapshot via the existing ``snap_set_read`` machinery and
  decrypted by *its own* dispatcher (its own LUKS volume key).  The first
  layer that holds the object serves the read; a miss through the whole
  chain reads as zeros.  Nothing is re-encrypted on the way up.
* **Writes** to objects the child has never written perform *copyup*: the
  full backing object is read from the parent chain (plaintext), the
  write is spliced in, and the whole object is written through the
  child's dispatcher as one extent — i.e. one atomic
  :class:`~repro.rados.transaction.WriteTransaction` per object carrying
  the copied-up data *and* the new write (and, for encrypted children,
  all per-sector metadata), re-encrypted under the child's key.
* **flatten()** migrates every remaining backed object down into the
  child and detaches it from its parent, after which the image is
  self-contained.

Cost attribution needs no special casing: parent reads travel through the
ordinary instrumented read path of the parent layer's image (charging
client/OSD resources and, in event mode, recording ``OpTrace``s) and the
copyup transaction through the child's ordinary write path, so a copyup
costs exactly "parent read + child transaction" in both the analytic and
the event-driven performance models.  The ledger additionally counts
``clone.copyups`` / ``clone.parent_reads`` / ``clone.copyup_bytes`` so
benchmarks can report copyup traffic explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CloneError, ObjectNotFoundError
from ..faults.plan import STAGE_MID_COPYUP, crash_point
from ..rados.transaction import ReadOperation
from ..rbd.image import Image, IoResult, ParentRef
from ..rbd.striping import map_extent
from ..sim.ledger import OpReceipt


@dataclass
class CloneLayer:
    """One ancestor of a layered image, opened read-only at its snapshot."""

    image: Image          #: independently opened image (own IoCtx/dispatcher)
    snap_id: int          #: snapshot the layer is frozen at
    overlap: int          #: bytes of the layer *above* covered by this layer

    def __post_init__(self) -> None:
        # Route every read of this layer to its clone-time snapshot; the
        # layer owns its IoCtx so this cannot disturb other handles.
        self.image.set_read_snapshot_id(self.snap_id)
        # The layer must address the snapshot-time range even when its
        # head was later shrunk: widen the handle's in-memory size (never
        # persisted — this handle is read-only and private to the layer)
        # so bounds checks admit reads the snapshot legitimately covers.
        if self.image.header.size < self.overlap:
            self.image.header.size = self.overlap


class LayeredImage:
    """A clone child plus its ancestor chain, presented as one image."""

    def __init__(self, image: Image, layers: Sequence[CloneLayer]) -> None:
        if image.header.parent is None and layers:
            raise CloneError(f"image {image.name!r} is not a clone child")
        for layer in layers:
            if layer.image.object_size != image.object_size:
                raise CloneError(
                    "clone layers must share the child's object size")
        self._image = image
        self._layers = list(layers)
        self._ledger = image.ioctx.cluster.ledger
        #: lazily discovered child object existence (True once written)
        self._present: Dict[int, bool] = {}
        #: per-(snap id, object) child presence for snapshot-routed reads
        #: (a snapshot's view is frozen: an object absent-or-empty at the
        #: snapshot stays that way even after a later copyup, so negative
        #: results may be cached too)
        self._snap_present: Dict[Tuple[int, int], bool] = {}
        #: lazily discovered per-layer object existence (frozen snapshots,
        #: so negative results may be cached too)
        self._layer_present: List[Dict[int, bool]] = [{} for _ in layers]

    # -- plumbing ---------------------------------------------------------------

    def __getattr__(self, name: str):
        # Management surface (header, snapshots, ioctx, dispatcher, size,
        # check_io, ...) behaves exactly like the child image.
        return getattr(self._image, name)

    @property
    def image(self) -> Image:
        """The wrapped child image (its own head and dispatcher)."""
        return self._image

    @property
    def layers(self) -> List[CloneLayer]:
        """Ancestor layers, nearest parent first (empty after flatten)."""
        return list(self._layers)

    @property
    def clone_depth(self) -> int:
        """Number of ancestor layers below the child."""
        return len(self._layers)

    # -- object presence --------------------------------------------------------

    def _stat_size(self, image: Image, name: str,
                   receipt: OpReceipt) -> Optional[int]:
        """Object size through ``image``'s IoCtx (snapshot routing applies),
        folding the stat's cost into ``receipt``; ``None`` when absent."""
        try:
            result = image.ioctx.operate_read(name, ReadOperation().stat())
        except ObjectNotFoundError:
            return None
        receipt.extend(result.receipt)
        return result.results[0].size

    def _child_has_object(self, object_no: int, receipt: OpReceipt) -> bool:
        """Whether the child has *materialized* the object (copyup/write).

        This is COW-structure state, independent of read routing: the stat
        may travel through a snapshot-routed IoCtx, but an object that
        exists at the head also exists (as an empty preserved clone, size
        0) at any earlier snapshot, so the boolean is routing-invariant.
        """
        cached = self._present.get(object_no)
        if cached is not None:
            return cached
        size = self._stat_size(self._image,
                               self._image.data_object_name(object_no), receipt)
        present = size is not None
        self._present[object_no] = present
        return present

    def _child_serves_read(self, object_no: int, receipt: OpReceipt) -> bool:
        """Whether a *read* of the object should stop at the child layer.

        At the head this is plain materialization.  While a read-snapshot
        is set on the child, the object must have held data *at that
        snapshot*: an object copied up after the snapshot preserves an
        empty clone there (size 0), and such a read belongs to the parent
        chain — exactly like a mid-chain layer's presence rule.
        """
        snap_id = self._image.read_snapshot_id
        if snap_id is None:
            return self._child_has_object(object_no, receipt)
        cached = self._snap_present.get((snap_id, object_no))
        if cached is not None:
            return cached
        size = self._stat_size(self._image,
                               self._image.data_object_name(object_no), receipt)
        present = bool(size)
        self._snap_present[(snap_id, object_no)] = present
        return present

    def _layer_has_object(self, index: int, object_no: int,
                          receipt: OpReceipt) -> bool:
        """Whether layer ``index`` holds data for ``object_no`` at its
        snapshot.  Size 0 counts as absent: a copied-up-after-snapshot
        object preserves an *empty* clone at the snapshot, which must fall
        through to the next layer."""
        cached = self._layer_present[index].get(object_no)
        if cached is not None:
            return cached
        layer = self._layers[index]
        size = self._stat_size(layer.image,
                               layer.image.data_object_name(object_no), receipt)
        present = bool(size)
        self._layer_present[index][object_no] = present
        return present

    def _mark_written(self, object_no: int) -> None:
        self._present[object_no] = True

    # -- chain reads ------------------------------------------------------------

    def _resolve_chain_layer(self, object_no: int, image_offset: int,
                             end: int, receipt: OpReceipt
                             ) -> Optional[Tuple[int, int]]:
        """The (layer index, visible end) serving ``[image_offset, end)``
        of an object the child has not materialized, or ``None`` when no
        ancestor holds it.

        Per-layer overlaps clip visibility cumulatively on the way down:
        bytes past the clipped end read as zeros, matching librbd's
        parent-overlap rule.  (The layer handle's size covers its
        overlap — CloneLayer widens it when the head was shrunk later.)
        """
        visible_to = end
        for index, layer in enumerate(self._layers):
            visible_to = min(visible_to, layer.overlap)
            if visible_to <= image_offset:
                return None
            if self._layer_has_object(index, object_no, receipt):
                return index, visible_to
        return None

    def _read_from_chain(self, object_no: int, offset: int, length: int,
                         receipt: OpReceipt) -> Optional[bytes]:
        """Serve ``length`` bytes at in-object ``offset`` from the first
        ancestor layer holding the object (``None`` when no layer does)."""
        image_offset = object_no * self._image.object_size + offset
        resolved = self._resolve_chain_layer(object_no, image_offset,
                                             image_offset + length, receipt)
        if resolved is None:
            return None
        index, visible_to = resolved
        result = self._layers[index].image.read_with_receipt(
            image_offset, visible_to - image_offset)
        receipt.extend(result.receipt)
        self._ledger.count("clone.parent_reads")
        self._ledger.count("clone.parent_read_bytes", len(result.data))
        data = result.data
        if len(data) < length:
            data = data + bytes(length - len(data))
        return data

    def _backing_object(self, object_no: int,
                        receipt: OpReceipt) -> Optional[bytes]:
        """The full backing data of one object from the chain, clipped to
        the child's size (``None`` when no ancestor holds the object)."""
        start = object_no * self._image.object_size
        length = min(self._image.object_size, self._image.size - start)
        if length <= 0:
            return None
        return self._read_from_chain(object_no, 0, length, receipt)

    # -- data path: reads -------------------------------------------------------

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` (descending the chain)."""
        return self.read_with_receipt(offset, length).data

    def read_with_receipt(self, offset: int, length: int) -> IoResult:
        """Read returning both the data and the aggregated cost receipt."""
        pieces, receipt = self.read_extents([(offset, length)])
        return IoResult(data=pieces[0], receipt=receipt)

    def read_extents(self, extents: Sequence[Tuple[int, int]]
                     ) -> Tuple[List[bytes], OpReceipt]:
        """Vectored read: child-resident pieces travel as one inner
        vectored call, and chain-served pieces are grouped by their
        resolving layer into one vectored call *per layer* — a boot-storm
        window over a fresh clone costs one parent round trip per object,
        not one per piece."""
        extents = list(extents)
        buffers: List[bytearray] = []
        child_extents: List[Tuple[int, int]] = []
        #: (extent index, buffer offset) per child-resident piece, in order
        child_placement: List[Tuple[int, int]] = []
        #: per resolving layer: clipped (image offset, length) extents
        layer_extents: Dict[int, List[Tuple[int, int]]] = {}
        layer_placement: Dict[int, List[Tuple[int, int]]] = {}
        receipt = OpReceipt()
        for index, (offset, length) in enumerate(extents):
            self._image.check_io(offset, length)
            buffers.append(bytearray(length))
            for extent in map_extent(offset, length,
                                     self._image.object_size):
                if self._child_serves_read(extent.object_no, receipt):
                    child_extents.append(
                        (extent.object_no * self._image.object_size
                         + extent.offset, extent.length))
                    child_placement.append((index, extent.buffer_offset))
                    continue
                image_offset = (extent.object_no * self._image.object_size
                                + extent.offset)
                resolved = self._resolve_chain_layer(
                    extent.object_no, image_offset,
                    image_offset + extent.length, receipt)
                if resolved is None:
                    # Whole-chain miss reads as zeros (buffer is zeroed).
                    continue
                layer_index, visible_to = resolved
                layer_extents.setdefault(layer_index, []).append(
                    (image_offset, visible_to - image_offset))
                layer_placement.setdefault(layer_index, []).append(
                    (index, extent.buffer_offset))
        if child_extents:
            pieces, child_receipt = self._image.read_extents(child_extents)
            for piece, (index, buffer_offset) in zip(pieces, child_placement):
                buffers[index][buffer_offset:buffer_offset + len(piece)] = piece
            receipt.extend(child_receipt)
        for layer_index in sorted(layer_extents):
            pieces, layer_receipt = self._layers[layer_index].image.read_extents(
                layer_extents[layer_index])
            for piece, (index, buffer_offset) in zip(
                    pieces, layer_placement[layer_index]):
                buffers[index][buffer_offset:buffer_offset + len(piece)] = piece
            receipt.extend(layer_receipt)
            self._ledger.count("clone.parent_reads",
                               len(layer_extents[layer_index]))
            self._ledger.count("clone.parent_read_bytes",
                               sum(len(p) for p in pieces))
        return [bytes(buffer) for buffer in buffers], receipt

    # -- data path: writes ------------------------------------------------------

    def write(self, offset: int, data) -> OpReceipt:
        """Write ``data`` at ``offset`` (copying up on first touch)."""
        return self.write_extents([(offset, data)])

    def write_extents(self, extents: Sequence[Tuple[int, bytes]]) -> OpReceipt:
        """Vectored write batch with librbd-style copyup.

        Objects the child already holds receive their pieces through one
        inner vectored call (one transaction per object, as always).  An
        object touched for the first time whose backing exists in the
        chain is copied up: the write's pieces are spliced into the full
        backing data and the object travels as a single full-object extent
        — copied-up bytes and the new write commit in one atomic
        transaction, re-encrypted under the child's key.
        """
        receipt = OpReceipt()
        #: per-object pieces in arrival order: (in-object offset, view)
        pieces: Dict[int, List[Tuple[int, memoryview]]] = {}
        order: List[int] = []
        for offset, data in extents:
            self._image.check_io(offset, len(data))
            if not len(data):
                continue
            view = memoryview(data).cast("B")
            for extent in map_extent(offset, len(data),
                                     self._image.object_size):
                if extent.object_no not in pieces:
                    order.append(extent.object_no)
                pieces.setdefault(extent.object_no, []).append(
                    (extent.offset,
                     view[extent.buffer_offset:
                          extent.buffer_offset + extent.length]))

        forward: List[Tuple[int, memoryview]] = []
        for object_no in order:
            object_base = object_no * self._image.object_size
            if not self._child_has_object(object_no, receipt):
                backing = self._backing_object(object_no, receipt)
                if backing is not None:
                    # Copyup: splice the new pieces into the backing data
                    # and write the whole object as one extent/transaction.
                    buffer = bytearray(backing)
                    for in_obj_offset, piece in pieces[object_no]:
                        buffer[in_obj_offset:in_obj_offset + len(piece)] = piece
                    # Fault hook: a kill here leaves the parent read done
                    # but the child object unwritten — recovery must see
                    # the pre-copyup state, never a half-materialised one.
                    crash_point(STAGE_MID_COPYUP)
                    copyup_receipt = self._image.write_extents(
                        [(object_base, memoryview(buffer))])
                    receipt.extend(copyup_receipt)
                    self._mark_written(object_no)
                    self._ledger.count("clone.copyups")
                    self._ledger.count("clone.copyup_bytes", len(buffer))
                    continue
                # Whole-chain miss: plain first write, object materialises
                # sparse exactly as on an unlayered image.
            for in_obj_offset, piece in pieces[object_no]:
                forward.append((object_base + in_obj_offset, piece))
            self._mark_written(object_no)
        if forward:
            receipt.extend(self._image.write_extents(forward))
        return receipt

    def discard(self, offset: int, length: int) -> OpReceipt:
        """Deallocate a byte range without exposing parent data.

        Discarding an unwritten-but-backed object copies it up first with
        the discarded range zeroed (one transaction); otherwise falling
        back to the chain on a later read would resurrect the discarded
        bytes.  Written (or unbacked) objects forward to the child, whose
        dispatcher defines the discard granularity.
        """
        self._image.check_io(offset, length)
        if not length:
            return OpReceipt()
        receipt = OpReceipt()
        for extent in map_extent(offset, length, self._image.object_size):
            object_base = extent.object_no * self._image.object_size
            if not self._child_has_object(extent.object_no, receipt):
                backing = self._backing_object(extent.object_no, receipt)
                if backing is not None:
                    buffer = bytearray(backing)
                    buffer[extent.offset:extent.offset + extent.length] = \
                        bytes(extent.length)
                    crash_point(STAGE_MID_COPYUP)
                    receipt.extend(self._image.write_extents(
                        [(object_base, memoryview(buffer))]))
                    self._mark_written(extent.object_no)
                    self._ledger.count("clone.copyups")
                    self._ledger.count("clone.copyup_bytes", len(buffer))
                    continue
            receipt.extend(self._image.discard(object_base + extent.offset,
                                               extent.length))
            self._mark_written(extent.object_no)
        return receipt

    # -- management -------------------------------------------------------------

    def flush(self) -> None:
        """Flush the child's dispatcher."""
        self._image.flush()

    def resize(self, new_size: int) -> None:
        """Resize the child; shrinking clips the parent overlap for good
        (regrowing later must not resurrect parent data past the shrink)."""
        self._image.resize(new_size)
        ref = self._image.parent_ref
        if ref is not None and new_size < ref.overlap:
            self._image.set_parent(ParentRef(
                image=ref.image, snap_id=ref.snap_id,
                snap_name=ref.snap_name, overlap=new_size))
            if self._layers:
                self._layers[0].overlap = new_size

    def flatten(self) -> OpReceipt:
        """Copy every remaining backed object into the child and detach it.

        After flatten the image is self-contained: reads never touch the
        chain, the parent's snapshot may be unprotected/removed, and the
        returned receipt aggregates the migration cost (each object is one
        parent read plus one child transaction, like a copyup).
        """
        receipt = OpReceipt()
        ref = self._image.parent_ref
        if ref is None:
            return receipt
        flattened = 0
        for object_no in range(self._image.object_count()):
            if self._child_has_object(object_no, receipt):
                continue
            backing = self._backing_object(object_no, receipt)
            if backing is None:
                continue
            object_base = object_no * self._image.object_size
            receipt.extend(self._image.write_extents(
                [(object_base, memoryview(bytearray(backing)))]))
            self._mark_written(object_no)
            flattened += 1
        self._image.set_parent(None)
        if self._layers:
            parent_head = self._layers[0].image
            # Deregister through a head-routed handle of the parent.
            parent = Image(parent_head.ioctx.cluster.client().open_ioctx(
                parent_head.ioctx.pool_name), parent_head.name)
            parent.deregister_child(ref.snap_id, self._image.name)
        self._layers = []
        self._layer_present = []
        self._ledger.count("clone.flattens")
        self._ledger.count("clone.flatten_objects", flattened)
        return receipt
