"""Clone chain management: snapshot protect, clone, open, flatten.

This is the reproduction of librbd's layering + layered-encryption flow
(the authors' upstream Ceph contribution): a *protected* snapshot of a
golden image becomes the parent of copy-on-write children, each child may
carry its **own** LUKS header — and therefore its own volume key and
passphrase — and opening a clone walks the parent chain, unlocking every
layer with its own secret so reads decrypt layer by layer.

Typical use::

    from repro import api

    cluster = api.make_cluster()
    golden, _ = api.create_encrypted_image(cluster, "golden", "64M",
                                           passphrase=b"fleet-secret")
    golden.write(0, b"base OS image ...")
    golden.create_snapshot("v1")

    child, info = api.clone_encrypted_image(
        cluster, "golden", "v1", "vm-0",
        passphrase=b"vm-0-secret", parent_passphrase=b"fleet-secret")
    child.read(0, 16)            # served from the parent, transparently
    child.write(0, b"vm-0 data") # copyup: re-encrypted under vm-0's key
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from .layered import CloneLayer, LayeredImage
from ..encryption.format import (EncryptedImageInfo, EncryptionOptions,
                                 format_encryption, has_encryption,
                                 load_encryption)
from ..errors import CloneError
from ..rados.client import IoCtx
from ..rados.cluster import Cluster
from ..rbd.image import Image, ParentRef, create_image, open_image


def _as_passphrase_list(value: Union[None, bytes, Sequence[bytes]]
                        ) -> List[bytes]:
    if value is None:
        return []
    if isinstance(value, (bytes, bytearray)):
        return [bytes(value)]
    return [bytes(item) for item in value]


def clone_image(parent: Image, snap_name: str, ioctx: IoCtx,
                clone_name: str) -> Image:
    """Create a copy-on-write child of ``parent@snap_name``.

    The snapshot must be protected first (:meth:`Image.protect_snapshot`);
    the child inherits the parent's size and object size (object-granular
    copyup requires matching striping) and records the parent reference in
    its header.  The returned image is the bare child — wrap it in a
    :class:`LayeredImage` (or use :func:`open_layered_image` /
    ``api.clone_encrypted_image``) to get chain-descending reads.
    """
    snap = parent.snapshot_by_name(snap_name)
    if not snap.protected:
        raise CloneError(
            f"snapshot {snap_name!r} of {parent.name!r} must be protected "
            f"before cloning")
    # The child mirrors the parent *at the snapshot*: a parent resized
    # between protect and clone must not change what the clone sees.
    snap_size = snap.size if snap.size is not None else parent.size
    create_image(ioctx, clone_name, snap_size, parent.object_size)
    child = open_image(ioctx, clone_name)
    child.set_parent(ParentRef(image=parent.name, snap_id=snap.snap_id,
                               snap_name=snap_name, overlap=snap_size))
    parent.register_child(snap.snap_id, clone_name)
    ioctx.cluster.ledger.count("clone.clones_created")
    return child


def build_layers(cluster: Cluster, child: Image,
                 passphrases: Sequence[bytes] = (),
                 pool: str = "rbd") -> Tuple[List[CloneLayer],
                                             List[Optional[EncryptedImageInfo]]]:
    """Walk ``child``'s ancestor chain, unlocking each layer.

    Every layer is opened on its own IoCtx (so snapshot read routing
    cannot leak across handles), format detection runs per layer
    (:func:`has_encryption` — encrypted and plaintext layers may mix), and
    ``passphrases[i]`` unlocks ancestor ``i`` (nearest parent first).
    When fewer passphrases than encrypted ancestors are given the last one
    is reused for the remainder, mirroring librbd's encryption-load
    semantics for uniform chains.
    """
    passphrases = _as_passphrase_list(passphrases)
    layers: List[CloneLayer] = []
    infos: List[Optional[EncryptedImageInfo]] = []
    ref = child.parent_ref
    index = 0
    seen = {child.name}
    while ref is not None:
        if ref.image in seen:
            raise CloneError(f"clone chain of {child.name!r} contains a "
                             f"cycle at {ref.image!r}")
        seen.add(ref.image)
        layer_ioctx = cluster.client().open_ioctx(pool)
        layer_image = open_image(layer_ioctx, ref.image)
        info: Optional[EncryptedImageInfo] = None
        if has_encryption(layer_image):
            if not passphrases:
                raise CloneError(
                    f"ancestor {ref.image!r} is encrypted but no passphrase "
                    f"was provided for it")
            passphrase = passphrases[min(index, len(passphrases) - 1)]
            info = load_encryption(layer_image, passphrase)
        layers.append(CloneLayer(image=layer_image, snap_id=ref.snap_id,
                                 overlap=ref.overlap))
        infos.append(info)
        ref = layer_image.parent_ref
        index += 1
    return layers, infos


def open_layered_image(cluster: Cluster, name: str,
                       passphrases: Union[None, bytes, Sequence[bytes]] = None,
                       pool: str = "rbd"
                       ) -> Tuple[LayeredImage,
                                  List[Optional[EncryptedImageInfo]]]:
    """Open an image together with its whole ancestor chain.

    ``passphrases`` lists one secret per layer, the child's first (a
    single ``bytes`` value is applied to every encrypted layer).  Returns
    the :class:`LayeredImage` and the per-layer unlock infos, child first
    (``None`` entries for plaintext layers).  Works on non-clones too —
    the chain is simply empty.
    """
    secrets = _as_passphrase_list(passphrases)
    ioctx = cluster.client().open_ioctx(pool)
    child = open_image(ioctx, name)
    child_info: Optional[EncryptedImageInfo] = None
    if has_encryption(child):
        if not secrets:
            raise CloneError(
                f"image {name!r} is encrypted but no passphrase was provided")
        child_info = load_encryption(child, secrets[0])
    layers, layer_infos = build_layers(cluster, child,
                                       secrets[1:] or secrets, pool=pool)
    return LayeredImage(child, layers), [child_info] + layer_infos


def clone_encrypted_image(cluster: Cluster, parent_name: str, snap_name: str,
                          clone_name: str, passphrase: bytes,
                          parent_passphrase: Union[bytes, Sequence[bytes]],
                          encryption_format: Optional[str] = None,
                          codec: Optional[str] = None,
                          cipher_suite: Optional[str] = None,
                          iv_policy: Optional[str] = None,
                          random_seed: Optional[bytes] = None,
                          pool: str = "rbd",
                          ) -> Tuple[LayeredImage, EncryptedImageInfo]:
    """Clone ``parent@snap`` into an independently keyed encrypted child.

    The child gets its *own* LUKS header, volume key and passphrase —
    compromising one layer's key reveals nothing another layer wrote (see
    :mod:`repro.attacks.clone_key_isolation`).  Format parameters default
    to the parent layer's (layout/codec/suite inheritance); the parent
    snapshot is protected automatically if it is not yet.
    """
    from ..crypto.drbg import HmacDrbg
    from ..crypto.suite import DEFAULT_SUITE

    parent_ioctx = cluster.client().open_ioctx(pool)
    parent = open_image(parent_ioctx, parent_name)
    snap = parent.snapshot_by_name(snap_name)
    if not snap.protected:
        parent.protect_snapshot(snap_name)

    parent_secrets = _as_passphrase_list(parent_passphrase)
    if not parent_secrets:
        raise CloneError("parent_passphrase is required to read the chain")
    child_ioctx = cluster.client().open_ioctx(pool)
    child = clone_image(parent, snap_name, child_ioctx, clone_name)
    # One chain walk unlocks every ancestor exactly once (one KDF per
    # layer); the nearest encrypted ancestor's info then supplies the
    # format defaults the child inherits.
    layers, layer_infos = build_layers(cluster, child, parent_secrets,
                                       pool=pool)
    inherited = next((info for info in layer_infos if info is not None), None)
    if inherited is not None:
        encryption_format = encryption_format or inherited.layout
        codec = codec or inherited.codec
        cipher_suite = cipher_suite or inherited.cipher_suite
        iv_policy = iv_policy or inherited.iv_policy
    elif encryption_format is None:
        encryption_format = "object-end"
    rng = HmacDrbg(random_seed) if random_seed else None
    options = EncryptionOptions(layout=encryption_format, codec=codec or "xts",
                                cipher_suite=cipher_suite or DEFAULT_SUITE,
                                iv_policy=iv_policy, random_source=rng)
    info = format_encryption(child, passphrase, options)
    return LayeredImage(child, layers), info


def flatten_image(cluster: Cluster, name: str,
                  passphrases: Union[None, bytes, Sequence[bytes]] = None,
                  pool: str = "rbd") -> LayeredImage:
    """Open a clone, migrate all parent data down, detach it, return it."""
    layered, _infos = open_layered_image(cluster, name, passphrases, pool=pool)
    layered.flatten()
    return layered


def clone_fanout(cluster: Cluster, parent_name: str, snap_name: str,
                 count: int, passphrase_for, parent_passphrase: bytes,
                 clone_depth: int = 1, name_format: str = "{parent}-clone{i}",
                 random_seed_prefix: bytes = b"fanout",
                 pool: str = "rbd") -> List[LayeredImage]:
    """Build the golden-image fan-out: ``count`` chains off one parent.

    Each chain is ``clone_depth`` layers deep (depth 1 = direct children);
    intermediate layers are snapshotted/protected per chain, and every
    layer gets its own passphrase from ``passphrase_for(client, depth)``.
    This is the boot-storm shape the benchmarks and the
    ``--clone-of``/``--clone-depth`` CLI options drive.
    """
    if clone_depth < 1:
        raise CloneError("clone_depth must be >= 1")
    clones: List[LayeredImage] = []
    for i in range(count):
        chain_parent, chain_snap = parent_name, snap_name
        secrets = [parent_passphrase]
        layered: Optional[LayeredImage] = None
        for depth in range(1, clone_depth + 1):
            child_name = name_format.format(parent=parent_name, i=i)
            if depth < clone_depth:
                child_name = f"{child_name}.d{depth}"
            secret = passphrase_for(i, depth)
            layered, _info = clone_encrypted_image(
                cluster, chain_parent, chain_snap, child_name,
                passphrase=secret,
                parent_passphrase=list(reversed(secrets)),
                random_seed=random_seed_prefix + f"-{i}-{depth}".encode(),
                pool=pool)
            secrets.append(secret)
            if depth < clone_depth:
                layered.create_snapshot("base")
                layered.image.protect_snapshot("base")
                chain_parent, chain_snap = child_name, "base"
        clones.append(layered)
    return clones
