"""repro — reproduction of "Rethinking Block Storage Encryption with Virtual
Disks" (Harnik, Naor, Ofer, Ozery — HotStorage'22).

The package provides:

* ``repro.crypto`` — from-scratch AES/XTS/GCM/wide-block ciphers, IV
  policies (plain64, ESSIV, random, write-counter), KDFs and MACs.
* ``repro.sim`` / ``repro.blockdev`` / ``repro.kvstore`` / ``repro.rados`` —
  a simulated Ceph-like distributed object store (OSDs with NVMe cost
  models, CRUSH-style placement, replication, atomic transactions, OMAP
  backed by a small LSM tree, snapshots).
* ``repro.rbd`` — a librbd-like virtual-disk image layer striping the LBA
  space over 4 MB objects.
* ``repro.encryption`` — the paper's contribution: client-side encryption
  formats with per-sector metadata layouts (``luks-baseline``,
  ``unaligned``, ``object-end``, ``omap``) plus authenticated/wide-block
  extensions.
* ``repro.workload`` — a fio-like workload generator and benchmark runner
  measuring simulated throughput.
* ``repro.attacks`` / ``repro.analysis`` — security demonstrations and the
  analytic overhead models behind the paper's discussion.

Quickstart::

    from repro import api
    cluster = api.make_cluster(osd_count=3)
    image = api.create_encrypted_image(cluster, "vol0", size="64M",
                                       encryption_format="object-end",
                                       passphrase=b"hunter2")
    image.write(0, b"hello world")
    assert image.read(0, 11) == b"hello world"
"""

__version__ = "1.0.0"

from . import errors, util  # noqa: F401  (re-exported for convenience)

__all__ = ["errors", "util", "__version__"]
