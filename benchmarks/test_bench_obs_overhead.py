"""Observability overhead gate: metrics on a 1M-request fleet replay.

The metrics registry is *pull-model*: nothing on the replay hot path
writes a metric — the run finishes, and the registry is built once from
the result the engine already produced (counters, latency reservoir,
queue waits), then rendered to the Prometheus text exposition.  This
benchmark pins that design's whole point as a number: the same
million-request fleet replay, once bare and once with full metrics
collection + exposition rendering, must agree within **5%** wall time.

Wall times are attached as strings (runner noise, ignored by the drift
gate); the deterministic signature — request count, exposition sample
count, series counts — is numeric and drift-gated via the committed
``BENCH_obs.json``.
"""

from __future__ import annotations

import time

from repro.obs import registry_from_sim, to_prometheus
from repro.sim.fleet import fleet_streams_from_template, simulate_fleet
from repro.workload.arrival import PoissonArrivals, arrival_schedule

from test_bench_fleet_scale import (ARRIVAL_RATE, NUM_CLIENTS, OPS_PER_CLIENT,
                                    OSD_COUNT, _capture_template)

#: ceiling on the relative wall-time cost of metrics-on replay
MAX_OVERHEAD = 0.05


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def test_obs_overhead_on_fleet_replay(benchmark):
    params, template = _capture_template()
    streams = fleet_streams_from_template(template, NUM_CLIENTS,
                                          OPS_PER_CLIENT,
                                          osd_count=OSD_COUNT)
    arrivals = arrival_schedule(
        PoissonArrivals(rate_per_client=ARRIVAL_RATE, seed=1234),
        [stream.num_ops for stream in streams])

    # warm-up pass: page in the numpy columns so neither timed pass pays
    # first-touch costs the other does not
    simulate_fleet(params, streams, arrivals)

    def observed():
        result = simulate_fleet(params, streams, arrivals)
        registry = registry_from_sim(result, kind="write")
        return result, to_prometheus(registry)

    # interleaved best-of-three on both sides: the delta under test
    # (~ms of post-run registry construction) is far below single-run
    # wall noise, and interleaving keeps slow machine drift from
    # penalising whichever side happens to run last
    bare_runs, observed_runs = [], []
    for _ in range(3):
        bare_runs.append(_timed(lambda: simulate_fleet(params, streams,
                                                       arrivals))[1])
        observed_runs.append(_timed(observed)[1])
    bare_s = min(bare_runs)
    observed_s = min(observed_runs)
    result, exposition = benchmark.pedantic(observed, rounds=1,
                                            iterations=1)
    overhead = observed_s / bare_s - 1.0

    samples = [line for line in exposition.splitlines()
               if line and not line.startswith("#")]
    histogram_samples = [line for line in samples if "_bucket" in line]

    print()
    print(f"obs overhead: {result.requests} requests, engine={result.engine}")
    print(f"  bare      {bare_s:8.2f} s")
    print(f"  metrics   {observed_s:8.2f} s  "
          f"({len(samples)} exposition samples)")
    print(f"  overhead  {overhead:+8.1%}  (ceiling {MAX_OVERHEAD:.0%})")

    assert result.requests >= 1_000_000
    assert result.engine == "vectorized"
    assert len(samples) > 30, "the exposition must carry the full signature"
    assert overhead <= MAX_OVERHEAD, (
        f"metrics-on replay cost {overhead:+.1%} wall time "
        f"(ceiling {MAX_OVERHEAD:.0%}): the registry is no longer "
        f"zero-overhead — something is writing metrics on the hot path")

    benchmark.extra_info["requests"] = result.requests
    benchmark.extra_info["exposition_samples"] = len(samples)
    benchmark.extra_info["histogram_samples"] = len(histogram_samples)
    benchmark.extra_info["simulated_s"] = round(result.elapsed_us / 1e6, 3)
    # wall-clock numbers stay strings so the drift gate skips them
    benchmark.extra_info["bare_wall_s"] = f"{bare_s:.2f}"
    benchmark.extra_info["observed_wall_s"] = f"{observed_s:.2f}"
    benchmark.extra_info["overhead_pct"] = f"{100 * overhead:+.1f}"
