"""Micro-benchmarks of the cryptographic primitives (wall-clock).

These are genuine wall-clock measurements of the pure-Python primitives.
Since the batched kernels landed, the *real* AES-XTS/GCM path runs one
bulk kernel call per sector instead of one Python call per 16-byte block;
the ``*_scalar`` benchmarks keep the old one-block-per-call path measurable
so the speedup stays visible (and regression-gated: see
``test_batched_speedup_floor`` and ``BENCH_crypto.json``).

``fastcipher`` remains the right choice for huge sweeps — see the README
"Performance notes" for when each path applies.
"""

from __future__ import annotations

import time

import pytest

from repro.crypto.aes import AES
from repro.crypto.fastcipher import Blake2Xts
from repro.crypto.gcm import GCM
from repro.crypto.wideblock import WideBlockCipher
from repro.crypto.xts import XTS

KEY32 = bytes(range(32))
KEY64 = bytes(range(64))
TWEAK = bytes(16)
SECTOR = bytes(range(256)) * 16      # 4 KiB
SECTOR_512 = bytes(range(256)) * 2   # 512 B
WINDOW = SECTOR * 16                 # 64 KiB batch window


# -- block granularity -------------------------------------------------------


def test_bench_aes_block_encrypt(benchmark):
    cipher = AES(KEY32)
    block = bytes(16)
    result = benchmark(cipher.encrypt_block, block)
    assert len(result) == 16


# -- sector granularity (4 KiB): batched vs scalar ---------------------------


def test_bench_aes_batched_kernel_sector(benchmark):
    cipher = AES(KEY32)
    result = benchmark(cipher.encrypt_blocks, SECTOR)
    assert len(result) == len(SECTOR)
    # Bit-exactness trajectory gate: the kernel output must never change.
    benchmark.extra_info["ciphertext_fingerprint"] = int.from_bytes(
        result[:8], "big")


def test_bench_xts_encrypt_sector(benchmark):
    cipher = XTS(KEY64)
    result = benchmark(cipher.encrypt, TWEAK, SECTOR)
    assert len(result) == len(SECTOR)


def test_bench_xts_encrypt_sector_scalar(benchmark):
    cipher = XTS(KEY64, batched=False)
    result = benchmark(cipher.encrypt, TWEAK, SECTOR)
    assert len(result) == len(SECTOR)


def test_bench_xts_decrypt_sector(benchmark):
    cipher = XTS(KEY64)
    ciphertext = cipher.encrypt(TWEAK, SECTOR)
    result = benchmark(cipher.decrypt, TWEAK, ciphertext)
    assert result == SECTOR


def test_bench_xts_encrypt_sector_512(benchmark):
    cipher = XTS(KEY64)
    result = benchmark(cipher.encrypt, TWEAK, SECTOR_512)
    assert len(result) == len(SECTOR_512)


def test_bench_gcm_encrypt_sector(benchmark):
    cipher = GCM(KEY32)
    nonce = bytes(12)
    result = benchmark(cipher.encrypt, nonce, SECTOR)
    assert len(result.ciphertext) == len(SECTOR)
    # The tag folds the whole CTR keystream and windowed-GHASH pipeline
    # into 16 bytes — a correctness drift anywhere in either changes it.
    benchmark.extra_info["tag_fingerprint"] = int.from_bytes(
        result.tag[:8], "big")


def test_bench_wideblock_encrypt_sector(benchmark):
    cipher = WideBlockCipher(KEY64)
    result = benchmark(cipher.encrypt, TWEAK, SECTOR)
    assert len(result) == len(SECTOR)
    benchmark.extra_info["ciphertext_fingerprint"] = int.from_bytes(
        result[:8], "big")


def test_bench_fast_cipher_encrypt_sector(benchmark):
    cipher = Blake2Xts(KEY32)
    result = benchmark(cipher.encrypt, TWEAK, SECTOR)
    assert len(result) == len(SECTOR)


# -- window granularity (64 KiB, a queue-depth-16 batch of sectors) ----------


def test_bench_aes_batched_kernel_window(benchmark):
    cipher = AES(KEY32)
    result = benchmark(cipher.encrypt_blocks, WINDOW)
    assert len(result) == len(WINDOW)


def test_bench_xts_encrypt_window(benchmark):
    cipher = XTS(KEY64)

    def window():
        return [cipher.encrypt(TWEAK, sector_view)
                for sector_view in
                (memoryview(WINDOW)[off:off + 4096]
                 for off in range(0, len(WINDOW), 4096))]

    result = benchmark(window)
    assert len(result) == 16


@pytest.mark.parametrize("suite_name, factory", [
    ("aes-xts-256", lambda: XTS(KEY64)),
    ("blake2-xts-sim", lambda: Blake2Xts(KEY32)),
])
def test_bench_sector_roundtrip(benchmark, suite_name, factory):
    cipher = factory()

    def roundtrip():
        return cipher.decrypt(TWEAK, cipher.encrypt(TWEAK, SECTOR))

    result = benchmark(roundtrip)
    assert result == SECTOR


# -- the speedup gate --------------------------------------------------------


def _best_of(runs: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_speedup_floor(benchmark):
    """Real AES-XTS 4 KiB sectors: the batched kernels must stay >= 5x
    faster than the scalar one-sub-block-per-call path, with bit-identical
    ciphertext.

    The timing assertion uses best-of-N wall clock (robust against load
    spikes); the deterministic structure of the optimisation — ciphertext
    fingerprints and per-sector call shape — is exported as ``extra_info``
    and trajectory-gated in CI against ``BENCH_crypto.json``.
    """
    batched = XTS(KEY64)
    scalar = XTS(KEY64, batched=False)
    ciphertext = batched.encrypt(TWEAK, SECTOR)
    assert ciphertext == scalar.encrypt(TWEAK, SECTOR)
    assert batched.decrypt(TWEAK, ciphertext) == SECTOR

    # Best-of-N wall clock: the batched runs are ~1 ms each, so generous
    # repetition keeps a load spike on a shared runner from faking a
    # regression (the real margin is ~8x encrypt / ~25x decrypt vs the
    # 5x floor).
    scalar_encrypt = _best_of(3, scalar.encrypt, TWEAK, SECTOR)
    scalar_decrypt = _best_of(3, scalar.decrypt, TWEAK, ciphertext)
    batched_encrypt = _best_of(7, batched.encrypt, TWEAK, SECTOR)
    batched_decrypt = _best_of(7, batched.decrypt, TWEAK, ciphertext)

    encrypt_speedup = scalar_encrypt / batched_encrypt
    decrypt_speedup = scalar_decrypt / batched_decrypt
    print(f"\nXTS 4KiB sector: encrypt {encrypt_speedup:.1f}x, "
          f"decrypt {decrypt_speedup:.1f}x faster batched "
          f"(scalar {scalar_encrypt * 1e3:.2f}/{scalar_decrypt * 1e3:.2f} ms, "
          f"batched {batched_encrypt * 1e3:.2f}/{batched_decrypt * 1e3:.2f} ms)")
    assert encrypt_speedup >= 5.0, (
        f"batched XTS encrypt only {encrypt_speedup:.1f}x faster than scalar")
    assert decrypt_speedup >= 5.0, (
        f"batched XTS decrypt only {decrypt_speedup:.1f}x faster than scalar")

    # Trajectory metrics for the CI drift gate.  The fingerprints and call
    # shape are deterministic (gated at ±10%, i.e. exact for integers);
    # the measured speedups use the ``speedup_`` prefix, which the gate
    # treats as a floor — current >= max(5, baseline/2) — so a halving of
    # the crypto-primitive advantage fails CI without flaking on runner
    # noise.
    benchmark.extra_info["sector_sub_blocks"] = len(SECTOR) // 16
    benchmark.extra_info["scalar_aes_calls_per_sector"] = len(SECTOR) // 16 + 1
    benchmark.extra_info["batched_kernel_calls_per_sector"] = 1
    benchmark.extra_info["ciphertext_fingerprint"] = int.from_bytes(
        ciphertext[:8], "big")
    benchmark.extra_info["ciphertext_tail_fingerprint"] = int.from_bytes(
        ciphertext[-8:], "big")
    benchmark.extra_info["speedup_encrypt"] = round(encrypt_speedup, 2)
    benchmark.extra_info["speedup_decrypt"] = round(decrypt_speedup, 2)
    benchmark(batched.encrypt, TWEAK, SECTOR)
