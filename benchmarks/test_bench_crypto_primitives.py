"""Micro-benchmarks of the cryptographic primitives (wall-clock).

These are genuine wall-clock measurements of the pure-Python primitives —
useful to understand why the throughput experiments use the cost model plus
the fast keyed cipher instead of timing pure-Python AES (see DESIGN.md §2).
"""

from __future__ import annotations

import pytest

from repro.crypto.aes import AES
from repro.crypto.fastcipher import Blake2Xts
from repro.crypto.gcm import GCM
from repro.crypto.wideblock import WideBlockCipher
from repro.crypto.xts import XTS

KEY32 = bytes(range(32))
KEY64 = bytes(range(64))
TWEAK = bytes(16)
SECTOR = bytes(range(256)) * 16  # 4 KiB


def test_bench_aes_block_encrypt(benchmark):
    cipher = AES(KEY32)
    block = bytes(16)
    result = benchmark(cipher.encrypt_block, block)
    assert len(result) == 16


def test_bench_xts_encrypt_sector(benchmark):
    cipher = XTS(KEY64)
    result = benchmark(cipher.encrypt, TWEAK, SECTOR)
    assert len(result) == len(SECTOR)


def test_bench_xts_decrypt_sector(benchmark):
    cipher = XTS(KEY64)
    ciphertext = cipher.encrypt(TWEAK, SECTOR)
    result = benchmark(cipher.decrypt, TWEAK, ciphertext)
    assert result == SECTOR


def test_bench_gcm_encrypt_sector(benchmark):
    cipher = GCM(KEY32)
    nonce = bytes(12)
    result = benchmark(cipher.encrypt, nonce, SECTOR)
    assert len(result.ciphertext) == len(SECTOR)


def test_bench_wideblock_encrypt_sector(benchmark):
    cipher = WideBlockCipher(KEY64)
    result = benchmark(cipher.encrypt, TWEAK, SECTOR)
    assert len(result) == len(SECTOR)


def test_bench_fast_cipher_encrypt_sector(benchmark):
    cipher = Blake2Xts(KEY32)
    result = benchmark(cipher.encrypt, TWEAK, SECTOR)
    assert len(result) == len(SECTOR)


@pytest.mark.parametrize("suite_name, factory", [
    ("aes-xts-256", lambda: XTS(KEY64)),
    ("blake2-xts-sim", lambda: Blake2Xts(KEY32)),
])
def test_bench_sector_roundtrip(benchmark, suite_name, factory):
    cipher = factory()

    def roundtrip():
        return cipher.decrypt(TWEAK, cipher.encrypt(TWEAK, SECTOR))

    result = benchmark(roundtrip)
    assert result == SECTOR
