"""Ablation A2 — 512-byte vs 4 KiB encryption blocks (LUKS1 vs LUKS2).

Footnote 4 of the paper: LUKS1 is limited to 512-byte encryption sectors,
"which makes adding per-sector information far more costly", and the paper
therefore only considers 4 KiB sectors.  This ablation quantifies that: the
same object-end layout pays an 8x larger metadata ratio (and an 8x larger
per-IO metadata write) with 512-byte blocks.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.analysis.report import ascii_table
from repro.analysis.sectors import SectorAccessModel
from repro.util import KIB, MIB
from repro.workload.runner import WorkloadRunner
from repro.workload.spec import WorkloadSpec


def _measure(block_size: int) -> float:
    cluster = api.make_cluster()
    ioctx = cluster.client().open_ioctx("rbd")
    from repro.rbd import create_image, open_image
    from repro.encryption import EncryptionOptions, format_encryption
    create_image(ioctx, f"ablation-bs-{block_size}", 32 * MIB)
    image = open_image(ioctx, f"ablation-bs-{block_size}")
    options = EncryptionOptions(layout="object-end", block_size=block_size,
                                cipher_suite="blake2-xts-sim")
    format_encryption(image, b"pw", options)
    runner = WorkloadRunner(cluster)
    spec = WorkloadSpec(rw="randwrite", io_size=16 * KIB, queue_depth=32,
                        io_count=96, seed=5)
    return runner.run(image, spec).bandwidth_mbps


def test_ablation_sector_size(benchmark):
    bw_4096 = _measure(4096)
    bw_512 = benchmark.pedantic(lambda: _measure(512), rounds=1, iterations=1)

    model_4096 = SectorAccessModel(block_size=4096)
    model_512 = SectorAccessModel(block_size=512, sector_size=4096)
    rows = [
        ["4096 B", f"{bw_4096:.0f}",
         f"{model_4096.space_overhead_percent('object-end'):.2f}%",
         model_4096.omap_keys(16 * KIB)],
        ["512 B", f"{bw_512:.0f}",
         f"{model_512.space_overhead_percent('object-end'):.2f}%",
         model_512.omap_keys(16 * KIB)],
    ]
    print()
    print(ascii_table(["block size", "16KiB randwrite MiB/s",
                       "metadata space overhead", "metadata entries per 16KiB"],
                      rows))

    benchmark.extra_info["write_mbps_4096"] = round(bw_4096, 1)
    benchmark.extra_info["write_mbps_512"] = round(bw_512, 1)

    # 512-byte blocks mean 8x the metadata entries and visibly lower
    # throughput; 4 KiB blocks are the right default (footnote 4).
    assert model_512.space_overhead_percent("object-end") == pytest.approx(3.125)
    assert model_4096.space_overhead_percent("object-end") == pytest.approx(0.390625)
    assert bw_512 < bw_4096
