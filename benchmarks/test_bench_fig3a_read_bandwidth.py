"""Experiment E1 — Fig. 3(a): random-read bandwidth vs IO size.

Reproduces the paper's read sweep: randread at queue depth 32 over a fully
written encrypted image, for the LUKS2 baseline and the three per-sector
metadata layouts.  The paper's findings to check against: all three layouts
stay close to the baseline, the object-end layout's worst case is about 3 %
below baseline, and OMAP fares slightly worse than the other two.
"""

from __future__ import annotations

from bench_common import sweep_config

from repro.analysis.overhead import LayoutSweep, overhead_percent
from repro.analysis.report import format_bandwidth_table, format_overhead_table


def test_fig3a_read_bandwidth(benchmark, read_sweep_results):
    results = read_sweep_results

    def representative_point():
        # Wall-clock benchmark target: one 64 KiB read point on a fresh
        # cluster (the sweep itself is session-cached).
        config = sweep_config(io_sizes=(64 * 1024,),
                              layouts=("object-end",),
                              bytes_per_point=2 * 1024 * 1024)
        return LayoutSweep(config).run("read")

    benchmark.pedantic(representative_point, rounds=1, iterations=1)

    print()
    print(format_bandwidth_table(results))
    print()
    print(format_overhead_table(results))

    for layout in ("unaligned", "object-end", "omap"):
        for io_size in results.io_sizes():
            overhead = overhead_percent(results, layout, io_size)
            benchmark.extra_info[f"read_overhead_pct[{layout}][{io_size}]"] = round(overhead, 2)
            # Paper: reads closely mirror the baseline (<= 3% for object-end,
            # all layouts single-digit); allow a modest margin.
            assert overhead <= 10.0, (
                f"{layout} read overhead at {io_size} B is {overhead:.1f}%, "
                "far above the paper's near-baseline read behaviour")

    baseline_peak = max(bw for _size, bw in results.series("luks-baseline"))
    benchmark.extra_info["baseline_peak_read_mbps"] = round(baseline_peak, 1)
    assert baseline_peak > 1000.0, "baseline read bandwidth should reach GB/s scale"
