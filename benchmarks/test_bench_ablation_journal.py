"""Ablation A1 — atomic transactions vs journal-based consistency.

The paper's related-work discussion (§2.3) notes that dm-crypt +
dm-integrity keeps data and per-sector metadata consistent through a
journal, "which is shown to reduce the throughput by nearly one-half",
whereas the paper's design leans on RADOS atomic multi-op transactions and
avoids the double write.  This ablation runs the object-end layout both
ways and checks that the journaled variant loses a large fraction of its
write bandwidth while the atomic variant stays close to the baseline.
"""

from __future__ import annotations

from bench_common import sweep_config

from repro.analysis.overhead import LayoutSweep
from repro.analysis.report import ascii_table
from repro.util import KIB


IO_SIZES = (16 * KIB, 256 * KIB)


def _run(journaled: bool):
    config = sweep_config(io_sizes=IO_SIZES,
                          layouts=("luks-baseline", "object-end"),
                          journaled=journaled,
                          bytes_per_point=4 * 1024 * 1024)
    return LayoutSweep(config).run("write")


def test_ablation_journal_vs_atomic(benchmark):
    atomic = _run(journaled=False)
    journaled = benchmark.pedantic(lambda: _run(journaled=True),
                                   rounds=1, iterations=1)

    rows = []
    for io_size in IO_SIZES:
        atomic_bw = atomic.bandwidth("object-end", io_size)
        journal_bw = journaled.bandwidth("object-end", io_size)
        baseline_bw = atomic.bandwidth("luks-baseline", io_size)
        rows.append([io_size, f"{baseline_bw:.0f}", f"{atomic_bw:.0f}",
                     f"{journal_bw:.0f}", f"{journal_bw / atomic_bw:.2f}"])
        benchmark.extra_info[f"journal_ratio[{io_size}]"] = round(
            journal_bw / atomic_bw, 3)

        # The journal costs an extra full data write (plus an extra round
        # trip), so it should lose a large fraction of the throughput that
        # the atomic-transaction design keeps.
        assert journal_bw < atomic_bw * 0.75, (
            f"journaled write should be much slower at {io_size} B")
        assert journal_bw > atomic_bw * 0.30, (
            "journaled write should not collapse entirely")
        assert atomic_bw > baseline_bw * 0.70

    print()
    print(ascii_table(["IO size", "baseline MiB/s", "atomic object-end",
                       "journaled object-end", "journal/atomic"], rows))
