"""Experiment E7 — multi-client contention through the event-driven engine.

The paper's testbed runs many fio clients against one replicated cluster;
this benchmark reproduces that regime with the discrete-event simulator:
1, 4 and 16 independent client streams (64 KiB random writes, QD 8 each,
object-end layout) contend for one fixed 3-OSD cluster.  It checks the two
signatures of real contention:

* **sub-linear aggregate bandwidth** — the cluster saturates, so 4 clients
  deliver far less than 4x one client's throughput;
* **monotonically rising p99** — queue waiting concentrates in the tail.

It also anchors the event engine to the analytic model: the single-client
event-mode result must stay within 15% of the analytic estimate (the same
band the regression suite enforces across the Fig. 3 sweeps).
"""

from __future__ import annotations

from bench_common import sweep_config

from repro.analysis.overhead import LayoutSweep
from repro.sim.costparams import default_cost_parameters

CLIENT_COUNTS = (1, 4, 16)
IO_SIZE = 64 * 1024
QUEUE_DEPTH = 8


def _config(sim_mode, num_clients):
    params = default_cost_parameters()
    params.osd_shards = 2
    return sweep_config(io_sizes=(IO_SIZE,), layouts=("object-end",),
                        image_size=32 * 1024 * 1024,
                        object_size=512 * 1024,
                        bytes_per_point=4 * 1024 * 1024,
                        queue_depth=QUEUE_DEPTH, sim_mode=sim_mode,
                        num_clients=num_clients, params=params)


def _run_point(sim_mode, num_clients):
    results = LayoutSweep(_config(sim_mode, num_clients)).run("write")
    return results.result("object-end", IO_SIZE)


def test_multi_client_contention(benchmark):
    points = {}

    def sweep():
        for clients in CLIENT_COUNTS:
            points[clients] = _run_point("events", clients)
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("event-driven randwrite 64 KiB, object-end layout, QD 8/client:")
    for clients in CLIENT_COUNTS:
        result = points[clients]
        print(f"  clients={clients:3d}  agg {result.bandwidth_mbps:8.1f} MiB/s"
              f"  per-client {result.bandwidth_mbps / clients:7.1f}"
              f"  p50={result.percentile('p50'):8.1f}"
              f"  p99={result.percentile('p99'):9.1f} us"
              f"  bound={result.estimate.bounding_resource}")
        benchmark.extra_info[f"agg_mbps[n={clients}]"] = round(
            result.bandwidth_mbps, 1)
        benchmark.extra_info[f"p99_us[n={clients}]"] = round(
            result.percentile("p99"), 1)

    # Contention signature 1: sub-linear aggregate bandwidth.
    for few, many in zip(CLIENT_COUNTS, CLIENT_COUNTS[1:]):
        scale = many / few
        assert (points[many].bandwidth_mbps
                < 0.75 * scale * points[few].bandwidth_mbps), (
            f"{many} clients should aggregate clearly sub-linearly "
            f"vs {few}")
    # Contention signature 2: the tail grows monotonically.
    for few, many in zip(CLIENT_COUNTS, CLIENT_COUNTS[1:]):
        assert (points[many].percentile("p99")
                > points[few].percentile("p99")), (
            f"p99 must rise from {few} to {many} clients")


def test_single_client_events_anchor_analytic(benchmark):
    def run_both():
        return _run_point("analytic", 1), _run_point("events", 1)

    analytic, events = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["analytic_mbps"] = round(analytic.bandwidth_mbps, 1)
    benchmark.extra_info["events_mbps"] = round(events.bandwidth_mbps, 1)
    deviation = abs(events.bandwidth_mbps - analytic.bandwidth_mbps)
    assert deviation <= 0.15 * analytic.bandwidth_mbps, (
        f"single-client event mode ({events.bandwidth_mbps:.1f} MiB/s) "
        f"deviates more than 15% from analytic "
        f"({analytic.bandwidth_mbps:.1f} MiB/s)")
