"""Experiment E10 — persistent write log: ack latency vs drain cost.

libRBD's persistent write-back cache (pwl) acks a write as soon as it is
durable in a local log, then drains to the cluster in order.  In the cost
model this trades the full encrypted round trip (client CPU + network +
replicated OSD transaction) on the ack path for a local append at PMEM-ish
latency, while the cluster still absorbs every byte on the drain path.

This benchmark pins that trade on two axes:

* **acked write latency** — p50 of 4 KiB random writes must collapse when
  acks come from the log instead of the cluster round trip, on every
  metadata layout.  Acceptance: **>= 5x lower p50** than the uncached
  engine (gated as a ``speedup_*`` floor in CI).
* **conservation of drain work** — every acked byte must still reach the
  cluster: after the run flushes, ``pwl.drained_records`` equals
  ``pwl.appends`` and RADOS still sees the writes.

All numbers are deterministic (seeded workloads, simulated time), so the
committed ``BENCH_pwl.json`` baseline is gated in CI: ``speedup_*`` keys
as floors, everything else at ±10% drift.
"""

from __future__ import annotations

from repro import api
from repro.util import KIB, MIB
from repro.workload.runner import WorkloadRunner
from repro.workload.spec import WorkloadSpec

LAYOUTS = ("luks-baseline", "object-end", "omap")
IMAGE_SIZE = 4 * MIB
OBJECT_SIZE = 1 * MIB
TOTAL_BYTES = 4 * MIB
QUEUE_DEPTH = 1              # latency benchmark: no queueing on the ack path


def _run(layout, label, spec):
    cluster = api.make_cluster(osd_count=3, replica_count=3)
    image, _info = api.create_encrypted_image(
        cluster, f"pwl-bench-{label}", IMAGE_SIZE,
        passphrase=b"benchmark-passphrase", encryption_format=layout,
        cipher_suite="blake2-xts-sim", object_size=OBJECT_SIZE,
        random_seed=f"pwl-bench-{label}".encode("utf-8"))
    return WorkloadRunner(cluster).run(image, spec, layout_name=layout)


def _write_spec(**overrides):
    base = dict(name="pwl-randwrite", rw="randwrite", io_size=4 * KIB,
                queue_depth=QUEUE_DEPTH, total_bytes=TOTAL_BYTES, seed=1717)
    base.update(overrides)
    return WorkloadSpec(**base)


def test_pwl_ack_latency_vs_uncached(benchmark):
    """Log-acked writes must cut p50 latency >= 5x on every layout."""
    points = {}

    def sweep():
        for layout in LAYOUTS:
            uncached = _run(layout, f"un-{layout}", _write_spec())
            pwl = _run(layout, f"pwl-{layout}", _write_spec(
                cache_mode="pwl", cache_size=8 * MIB))
            points[layout] = (uncached, pwl)
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("4 KiB randwrite QD1: cluster-acked vs log-acked p50 latency:")
    for layout in LAYOUTS:
        uncached, pwl = points[layout]
        un_p50 = uncached.percentile("p50")
        pwl_p50 = pwl.percentile("p50")
        speedup = un_p50 / max(pwl_p50, 1e-9)
        print(f"  {layout:14s} p50 {un_p50:8.1f} -> {pwl_p50:6.1f} us "
              f"({speedup:5.1f}x)  bw {uncached.bandwidth_mbps:7.1f} -> "
              f"{pwl.bandwidth_mbps:7.1f} MiB/s")
        benchmark.extra_info[f"speedup_p50[{layout}]"] = round(speedup, 1)
        benchmark.extra_info[f"pwl_p50_us[{layout}]"] = round(pwl_p50, 1)
        benchmark.extra_info[f"pwl_mbps[{layout}]"] = round(
            pwl.bandwidth_mbps, 1)
        assert speedup >= 5.0, (
            f"{layout}: log ack must be >= 5x faster than the round trip "
            f"({un_p50:.1f} vs {pwl_p50:.1f} us)")


def test_pwl_drain_conserves_every_acked_write(benchmark):
    """Acked bytes are a debt: the drain path must pay all of them."""
    points = {}

    def sweep():
        for layout in LAYOUTS:
            points[layout] = _run(layout, f"drain-{layout}", _write_spec(
                cache_mode="pwl", cache_size=1 * MIB))
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("pwl drain conservation (1 MiB log, 4 MiB written):")
    for layout in LAYOUTS:
        result = points[layout]
        appends = result.counter("pwl.appends")
        drained = result.counter("pwl.drained_records")
        txns = result.counter("rados.transactions")
        print(f"  {layout:14s} appends {appends:5.0f}  drained {drained:5.0f}"
              f"  rados txns {txns:6.0f}  checkpoints "
              f"{result.counter('pwl.checkpoints'):4.0f}")
        benchmark.extra_info[f"appends[{layout}]"] = round(appends)
        benchmark.extra_info[f"drained[{layout}]"] = round(drained)
        benchmark.extra_info[f"rados_txns[{layout}]"] = round(txns)
        assert appends == drained, (
            f"{layout}: {appends - drained:.0f} acked records never drained")
        assert txns >= appends, (
            f"{layout}: drain must issue one transaction per record")
