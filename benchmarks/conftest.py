"""Shared fixtures for the benchmark harness.

Every benchmark runs a *reduced* version of the paper's sweep by default so
that ``pytest benchmarks/ --benchmark-only`` finishes in a few minutes on a
laptop.  Set ``REPRO_BENCH_FULL=1`` in the environment to run the full
4 KiB – 4 MiB sweep with the paper's eleven IO sizes.

The numbers that matter (simulated bandwidth per layout and IO size, and
the derived overhead percentages) are attached to each benchmark's
``extra_info`` and printed to stdout, so they appear both in the
pytest-benchmark output and in ``bench_output.txt``.
"""

from __future__ import annotations

import pytest

from bench_common import sweep_config
from repro.analysis.overhead import LayoutSweep


@pytest.fixture(scope="session")
def write_sweep_results():
    """The Fig. 3b write sweep, shared by the write-bandwidth and overhead
    benchmarks so the expensive part runs once per session."""
    sweep = LayoutSweep(sweep_config())
    return sweep.run("write")


@pytest.fixture(scope="session")
def read_sweep_results():
    """The Fig. 3a read sweep."""
    sweep = LayoutSweep(sweep_config())
    return sweep.run("read")
