"""Ablation A3 — sensitivity to cluster configuration (§4 "looking forward").

The paper asks how its results extend to "different Ceph configurations and
different hardware or scale".  This ablation varies the replication factor
and the object size and reports the object-end layout's write overhead in
each configuration, checking that the paper's conclusion (a modest,
IO-size-dependent overhead) is not an artifact of one particular setup.
"""

from __future__ import annotations

from bench_common import sweep_config

from repro.analysis.overhead import LayoutSweep, overhead_percent
from repro.analysis.report import ascii_table
from repro.util import KIB, MIB


def _overhead(replica_count: int, object_size: int, io_size: int) -> float:
    config = sweep_config(io_sizes=(io_size,),
                          layouts=("luks-baseline", "object-end"),
                          replica_count=replica_count,
                          object_size=object_size,
                          image_size=32 * MIB,
                          bytes_per_point=4 * MIB)
    results = LayoutSweep(config).run("write")
    return overhead_percent(results, "object-end", io_size)


def test_ablation_cluster_config(benchmark):
    io_size = 16 * KIB
    configurations = (
        (1, 4 * MIB), (2, 4 * MIB), (3, 4 * MIB),   # replication sweep
        (3, 1 * MIB), (3, 8 * MIB),                  # object-size sweep
    )

    def run_all():
        return {(rep, osz): _overhead(rep, osz, io_size)
                for rep, osz in configurations}

    overheads = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[rep, f"{osz // MIB} MiB", f"{value:.1f}%"]
            for (rep, osz), value in overheads.items()]
    print()
    print(ascii_table(["replicas", "object size",
                       f"object-end write overhead @ {io_size // KIB} KiB"],
                      rows))

    for key, value in overheads.items():
        benchmark.extra_info[f"overhead_pct[replicas={key[0]},object={key[1]}]"] = round(value, 2)
        # The qualitative conclusion holds across configurations: a visible
        # but moderate overhead at this IO size.
        assert 2.0 <= value <= 40.0, (
            f"object-end overhead {value:.1f}% out of expected range for {key}")
