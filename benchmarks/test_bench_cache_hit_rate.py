"""Experiment E8 — client-side cache: hit rate × metadata layout.

The paper's cost model makes every miss to the cluster expensive — a
round trip, a replicated transaction and the layout's per-sector metadata
accesses — which is exactly what a client-side block cache amortizes
(libRBD ships one for this reason).  This benchmark measures the
interaction between cache hit rate and metadata layout on three axes:

* **rewrite-heavy writeback** — 4 KiB random writes over a working set
  that fits in the cache; dirty blocks collapse in the cache and reach
  the cluster coalesced.  Acceptance: **>= 2x fewer RADOS transactions**
  than the uncached engine at cache size >= working set, per layout.
* **hit rate vs cache size** — the same workload at fractions of the
  working set, showing the hit-rate curve the eviction policy produces.
* **sequential readahead** — a sequential read scan with and without
  readahead, showing prefetch turning misses into hits.

All numbers are deterministic (seeded workloads, simulated time), so the
committed ``BENCH_cache.json`` baseline is gated at ±10% in CI.
"""

from __future__ import annotations

from repro import api
from repro.util import KIB, MIB
from repro.workload.runner import WorkloadRunner, prefill_image
from repro.workload.spec import WorkloadSpec

LAYOUTS = ("luks-baseline", "object-end", "omap")
IMAGE_SIZE = 4 * MIB            # the working set: 1024 cacheable blocks
OBJECT_SIZE = 1 * MIB
REWRITE_BYTES = 16 * MIB        # ~4 rewrites per block on average
QUEUE_DEPTH = 16


def _run(layout, label, spec, prefill=False):
    cluster = api.make_cluster(osd_count=3, replica_count=3)
    image, _info = api.create_encrypted_image(
        cluster, f"cache-bench-{label}", IMAGE_SIZE,
        passphrase=b"benchmark-passphrase", encryption_format=layout,
        cipher_suite="blake2-xts-sim", object_size=OBJECT_SIZE,
        random_seed=f"cache-bench-{label}".encode("utf-8"))
    if prefill:
        prefill_image(image)
    return WorkloadRunner(cluster).run(image, spec, layout_name=layout)


def _rewrite_spec(**overrides):
    base = dict(name="rewrite-heavy", rw="randwrite", io_size=4 * KIB,
                queue_depth=QUEUE_DEPTH, total_bytes=REWRITE_BYTES,
                seed=4242, batched=True)
    base.update(overrides)
    return WorkloadSpec(**base)


def test_cache_rewrite_heavy_txn_reduction(benchmark):
    """Writeback at cache >= working set must commit >= 2x fewer
    transactions than the uncached batched engine, on every layout."""
    points = {}

    def sweep():
        for layout in LAYOUTS:
            uncached = _run(layout, f"un-{layout}", _rewrite_spec())
            cached = _run(layout, f"wb-{layout}", _rewrite_spec(
                cache_mode="writeback", cache_size=8 * MIB))
            points[layout] = (uncached, cached)
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("rewrite-heavy 4 KiB randwrite, cache >= working set:")
    for layout in LAYOUTS:
        uncached, cached = points[layout]
        un_txns = uncached.counter("rados.transactions")
        wb_txns = cached.counter("rados.transactions")
        reduction = un_txns / max(wb_txns, 1)
        writes = (cached.counter("cache.write_hits")
                  + cached.counter("cache.write_misses"))
        hit_rate = cached.counter("cache.write_hits") / max(writes, 1)
        print(f"  {layout:14s} txns {un_txns:6.0f} -> {wb_txns:5.0f} "
              f"({reduction:4.1f}x)  write-hit {100 * hit_rate:5.1f}%  "
              f"bw {uncached.bandwidth_mbps:7.1f} -> "
              f"{cached.bandwidth_mbps:7.1f} MiB/s")
        benchmark.extra_info[f"txn_reduction[{layout}]"] = round(reduction, 2)
        benchmark.extra_info[f"write_hit_rate[{layout}]"] = round(hit_rate, 3)
        benchmark.extra_info[f"cached_mbps[{layout}]"] = round(
            cached.bandwidth_mbps, 1)
        assert wb_txns * 2 <= un_txns, (
            f"{layout}: writeback saved less than 2x transactions "
            f"({wb_txns:.0f} vs {un_txns:.0f})")
        assert cached.bandwidth_mbps > uncached.bandwidth_mbps, (
            f"{layout}: the cache must not make the rewrite workload slower")


def test_cache_hit_rate_vs_size(benchmark):
    """The write-hit-rate curve across cache sizes, object-end layout."""
    sizes = (1 * MIB, 2 * MIB, 4 * MIB, 8 * MIB)
    points = {}

    def sweep():
        for size in sizes:
            points[size] = _run("object-end", f"sz-{size}", _rewrite_spec(
                cache_mode="writeback", cache_size=size))
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("write hit rate vs cache size (4 MiB working set, object-end):")
    rates = []
    for size in sizes:
        result = points[size]
        writes = (result.counter("cache.write_hits")
                  + result.counter("cache.write_misses"))
        rate = result.counter("cache.write_hits") / max(writes, 1)
        rates.append(rate)
        print(f"  cache={size // MIB:2d}M  write-hit {100 * rate:5.1f}%  "
              f"txns={result.counter('rados.transactions'):6.0f}")
        benchmark.extra_info[f"write_hit_rate[{size // MIB}M]"] = round(rate, 3)
    assert rates == sorted(rates), "hit rate must grow with cache size"
    assert rates[-1] > rates[0], "a working-set cache must beat a 1/4 cache"


def test_cache_readahead_sequential_scan(benchmark):
    """Readahead must turn a sequential scan's misses into hits."""
    def spec(readahead):
        return WorkloadSpec(name="seq-scan", rw="read", io_size=4 * KIB,
                            queue_depth=QUEUE_DEPTH, total_bytes=2 * MIB,
                            seed=77, cache_mode="writethrough",
                            cache_size=8 * MIB, readahead=readahead)

    points = {}

    def sweep():
        for readahead in (0, 16):
            points[readahead] = _run("object-end", f"ra-{readahead}",
                                     spec(readahead), prefill=True)
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("sequential 4 KiB scan, writethrough cache, object-end:")
    rates = {}
    for readahead, result in points.items():
        reads = (result.counter("cache.read_hits")
                 + result.counter("cache.read_misses"))
        rates[readahead] = result.counter("cache.read_hits") / max(reads, 1)
        print(f"  readahead={readahead:2d}  read-hit "
              f"{100 * rates[readahead]:5.1f}%  round trips "
              f"{result.counter('rados.client_read_ops'):5.0f}")
        benchmark.extra_info[f"read_hit_rate[ra={readahead}]"] = round(
            rates[readahead], 3)
        benchmark.extra_info[f"read_round_trips[ra={readahead}]"] = round(
            result.counter("rados.client_read_ops"))
    assert rates[16] > 0.8, "readahead should serve >80% of a scan from cache"
    assert rates[16] > rates[0] + 0.5, (
        "readahead must move the hit rate by a wide margin")
    assert (points[16].counter("rados.client_read_ops") * 2
            <= points[0].counter("rados.client_read_ops")), (
        "prefetch must batch the scan's round trips")
