"""Fleet-scale replay benchmark: 1,000 open-loop clients, >= 1M requests.

The paper's testbed tops out at a handful of fio clients; a cloud
operator cares about the *fleet* regime — a thousand encrypted virtual
disks issuing on independent Poisson schedules against one large
replicated cluster.  This benchmark pins that regime end to end:

1. a short **real** trace is captured through the actual data path
   (encryption layout, crypto, object placement) on a 64-OSD cluster;
2. the trace is tiled out to 1,000 clients x 1,000 ops (placement
   rotated per client) in compact numpy columns — one million client
   ops, at least one million simulated requests, no per-op objects;
3. the vectorized open-loop engine replays the whole fleet.

The assertions are the PR's contract: the replay must finish within a
hard wall-clock ceiling (it runs in a few seconds on one core — the old
per-op scheduler took minutes and gigabytes), and the reported
percentiles/moments must be bit-stable run to run, which is what lets
CI drift-gate them via the committed ``BENCH_fleet.json``.
"""

from __future__ import annotations

import time

from repro.api import create_encrypted_image, make_cluster
from repro.crypto.suite import SIMULATION_SUITE
from repro.sim.compact import encode_stream
from repro.sim.costparams import default_cost_parameters
from repro.sim.fleet import fleet_streams_from_template, simulate_fleet
from repro.util import KIB, MIB
from repro.workload.arrival import PoissonArrivals, arrival_schedule
from repro.workload.runner import capture_template_stream
from repro.workload.spec import WorkloadSpec

NUM_CLIENTS = 1000
OPS_PER_CLIENT = 1000
ARRIVAL_RATE = 200.0          # ops/s per client -> 200k IOPS offered load
OSD_COUNT = 64
TEMPLATE_OPS = 32
#: hard ceiling on replaying the million-request fleet (measured ~6 s on
#: one core; the ceiling leaves ~10x headroom for slow CI runners)
WALL_CEILING_S = 60.0


def _capture_template():
    """One short real run through the encrypted data path."""
    params = default_cost_parameters().with_overrides(
        sim_mode="events", event_engine="compact",
        osd_count=OSD_COUNT, replica_count=3)
    cluster = make_cluster(osd_count=OSD_COUNT, replica_count=3,
                           params=params)
    image, _info = create_encrypted_image(
        cluster, "fleet-template", 32 * MIB, passphrase=b"fleet-template",
        encryption_format="object-end", cipher_suite=SIMULATION_SUITE)
    spec = WorkloadSpec(name="fleet-template", rw="randwrite",
                        io_size=4 * KIB, queue_depth=1,
                        io_count=TEMPLATE_OPS, seed=1234)
    template = encode_stream(capture_template_stream(cluster, image, spec))
    return params, template


def test_fleet_scale_replay(benchmark):
    params, template = _capture_template()
    streams = fleet_streams_from_template(template, NUM_CLIENTS,
                                          OPS_PER_CLIENT,
                                          osd_count=OSD_COUNT)
    arrivals = arrival_schedule(
        PoissonArrivals(rate_per_client=ARRIVAL_RATE, seed=1234),
        [stream.num_ops for stream in streams])
    timing = {}

    def replay():
        started = time.perf_counter()
        result = simulate_fleet(params, streams, arrivals)
        timing["wall_s"] = time.perf_counter() - started
        return result

    result = benchmark.pedantic(replay, rounds=1, iterations=1)
    stats = result.request_stats
    pcts = stats.percentiles()
    elapsed_s = result.elapsed_us / 1e6
    wall_s = timing["wall_s"]

    print()
    print(f"fleet replay: {NUM_CLIENTS} clients x {OPS_PER_CLIENT} ops, "
          f"{OSD_COUNT} OSDs, engine={result.engine}")
    print(f"  requests  {result.requests:>12d}  "
          f"({result.events_processed} simulated events)")
    print(f"  simulated {elapsed_s:>12.2f} s  "
          f"({result.requests / elapsed_s:,.0f} IOPS, "
          f"bound={result.bounding_resource})")
    print(f"  latency   mean={stats.mean_us:.1f} "
          f"p50={pcts['p50']:.1f} p95={pcts['p95']:.1f} "
          f"p99={pcts['p99']:.1f} us")
    print(f"  wall      {wall_s:>12.2f} s  "
          f"({result.requests / max(wall_s, 1e-9):,.0f} requests/s replayed)")

    # -- scale contract ------------------------------------------------------
    assert result.requests >= 1_000_000, "the fleet run must replay >= 1M requests"
    assert result.engine == "vectorized"
    assert wall_s < WALL_CEILING_S, (
        f"million-request replay took {wall_s:.1f} s "
        f"(ceiling {WALL_CEILING_S:.0f} s)")
    # The offered load is below cluster saturation: latency is paced by
    # the arrival process, not by a saturated resource.
    assert result.bounding_resource == "arrival(open-loop)"

    # -- deterministic signature gated by CI (wall time stays a string so
    # the drift gate skips it — it is runner noise, not a model output) --
    benchmark.extra_info["num_clients"] = NUM_CLIENTS
    benchmark.extra_info["requests"] = result.requests
    benchmark.extra_info["events"] = result.events_processed
    benchmark.extra_info["simulated_s"] = round(elapsed_s, 3)
    benchmark.extra_info["mean_us"] = round(stats.mean_us, 1)
    benchmark.extra_info["p50_us"] = round(pcts["p50"], 1)
    benchmark.extra_info["p95_us"] = round(pcts["p95"], 1)
    benchmark.extra_info["p99_us"] = round(pcts["p99"], 1)
    benchmark.extra_info["bound"] = result.bounding_resource
    benchmark.extra_info["wall_s"] = f"{wall_s:.2f}"


def test_fleet_sharded_replay_matches_single_shard(benchmark):
    """The sharded path (4 contention domains, process-parallel merge)
    must reproduce its own deterministic signature at fleet scale; a
    reduced fleet keeps this second full replay cheap."""
    params, template = _capture_template()
    streams = fleet_streams_from_template(template, 200, 250,
                                          osd_count=OSD_COUNT)
    arrivals = arrival_schedule(
        PoissonArrivals(rate_per_client=ARRIVAL_RATE, seed=1234),
        [stream.num_ops for stream in streams])
    sharded = params.with_overrides(sim_shards=4, sim_jobs=2)

    def replay():
        return simulate_fleet(sharded, streams, arrivals)

    result = benchmark.pedantic(replay, rounds=1, iterations=1)
    again = simulate_fleet(sharded, streams, arrivals)
    assert result.elapsed_us == again.elapsed_us
    assert result.request_stats.summary() == again.request_stats.summary()
    pcts = result.request_stats.percentiles()
    benchmark.extra_info["requests"] = result.requests
    benchmark.extra_info["simulated_s"] = round(result.elapsed_us / 1e6, 3)
    benchmark.extra_info["mean_us"] = round(result.request_stats.mean_us, 1)
    benchmark.extra_info["p99_us"] = round(pcts["p99"], 1)
