"""Experiment E12 — erasure coding vs replication on the encrypted path.

The paper's encrypted images run on a replicated pool; an erasure-coded
pool trades capacity overhead (1.5x for 4+2 vs 3x for replica-3) for
CPU (GF(256) encode/decode) and different failure behavior.  This
benchmark pins that trade-off on the *same encrypted workload*:

* **write amplification** — cluster bytes moved per logical byte, for
  full-object writes (one whole stripe per object, the EC best case)
  and random 4 KiB writes (sub-chunk read-modify-write of the whole
  stripe, the EC worst case), replica-3 vs 4+2;
* **degraded-read p99** — modelled client latency of encrypted reads
  with zero and with m=2 chunk OSDs down (decode on the read path);
* **repair-storm tail** — the full failure drill on the EC pool
  (kill-during-backfill): client p99 during the rebuild storm and the
  number of stripes rebuilt by ec-repair.

Everything is deterministic (seeded workload, analytic latency model,
simulated time), so the committed ``BENCH_ec.json`` baseline is gated
in CI at +-10% drift.
"""

from __future__ import annotations

import random

from repro.api import create_encrypted_image, make_cluster
from repro.faults.drill import run_failure_drill
from repro.rados import ReadOperation
from repro.rados.cluster import ClusterConfig
from repro.util import KIB, MIB

SEED = 2026
OSD_COUNT = 24
IMAGE_SIZE = 2 * MIB
OBJECT_SIZE = 256 * KIB
EC_PROFILE = (4, 2)


def _make_stack(pool_ec):
    cluster = make_cluster(
        config=ClusterConfig(osd_count=OSD_COUNT, pg_count=128))
    pool = "rbd"
    if pool_ec is not None:
        pool = "rbd-ec"
        cluster.create_pool(pool, ec=pool_ec)
    image, _info = create_encrypted_image(
        cluster, "bench-ec", IMAGE_SIZE, passphrase=b"bench-ec",
        encryption_format="object-end", cipher_suite="blake2-xts-sim",
        object_size=OBJECT_SIZE, pool=pool, random_seed=b"bench-ec-seed")
    return cluster, image, pool


def _cluster_write_bytes(cluster, pool_ec):
    """Bytes fanned out across the cluster network by client writes."""
    key = "net.ec_shard_bytes" if pool_ec else "net.replication_bytes"
    return cluster.ledger.counter(key)


def _write_amplification(pool_ec, io_size, sequential):
    cluster, image, _pool = _make_stack(pool_ec)
    rng = random.Random(SEED)
    before = _cluster_write_bytes(cluster, pool_ec)
    count = 16 if sequential else 32
    logical = 0
    for index in range(count):
        if sequential:
            # Object-aligned full-object writes: each one replaces a
            # whole stripe, so EC pays no read-modify-write.
            offset = (index * io_size) % IMAGE_SIZE
        else:
            offset = rng.randrange(0, (IMAGE_SIZE - io_size) // 4096) * 4096
        image.write(offset, rng.randbytes(io_size))
        logical += io_size
    moved = _cluster_write_bytes(cluster, pool_ec) - before
    return moved / logical


def _read_p99(pool_ec, kill):
    """p99 of the modelled per-read latency over the whole image,
    optionally with ``kill`` chunk OSDs of the first object down."""
    cluster, image, pool = _make_stack(pool_ec)
    rng = random.Random(SEED)
    image.write(0, rng.randbytes(IMAGE_SIZE))
    ioctx = cluster.client().open_ioctx(pool)
    if kill:
        up = cluster.up_set(pool, f"rbd_data.{image.name}.{0:016x}")
        for osd_id in up[:kill]:
            cluster.mark_osd_down(osd_id)
    latencies = []
    for index in range(IMAGE_SIZE // OBJECT_SIZE):
        name = f"rbd_data.{image.name}.{index:016x}"
        for offset in range(0, OBJECT_SIZE, 64 * KIB):
            result = ioctx.operate_read(
                name, ReadOperation().read(offset, 64 * KIB))
            latencies.append(result.receipt.latency_us)
    latencies.sort()
    return latencies[int(0.99 * (len(latencies) - 1))]


def test_ec_overhead(benchmark):
    points = {}

    def measure():
        points["wa_fullobj_replica"] = _write_amplification(
            None, OBJECT_SIZE, sequential=True)
        points["wa_fullobj_ec"] = _write_amplification(
            EC_PROFILE, OBJECT_SIZE, sequential=True)
        points["wa_rand4k_replica"] = _write_amplification(
            None, 4 * KIB, sequential=False)
        points["wa_rand4k_ec"] = _write_amplification(
            EC_PROFILE, 4 * KIB, sequential=False)
        points["read_p99_us_healthy"] = _read_p99(EC_PROFILE, kill=0)
        points["read_p99_us_degraded"] = _read_p99(EC_PROFILE, kill=2)
        points["drill_ec"] = run_failure_drill(
            "kill-during-backfill", SEED, osd_count=100,
            pool_ec=EC_PROFILE)
        points["drill_replica"] = run_failure_drill(
            "kill-during-backfill", SEED, osd_count=100)
        return points

    benchmark.pedantic(measure, rounds=1, iterations=1)

    drill_ec = points["drill_ec"]
    drill_replica = points["drill_replica"]
    assert drill_ec.ok, drill_ec.summary()
    assert drill_replica.ok, drill_replica.summary()
    assert drill_ec.ec_repaired > 0, "EC drill rebuilt no stripes"

    # Replication fans a write out replica-1 times; 4+2 moves ~1.5x per
    # full stripe but rewrites all six chunks on a sub-chunk RMW.
    assert points["wa_fullobj_ec"] < points["wa_fullobj_replica"]
    assert points["wa_rand4k_ec"] > points["wa_rand4k_replica"]
    # Degraded reads pay reconstruct-decode: strictly slower at p99.
    assert points["read_p99_us_degraded"] > points["read_p99_us_healthy"]

    print()
    print(f"EC 4+2 vs replica-3 on the encrypted path ({OSD_COUNT} OSDs):")
    for key in ("wa_fullobj_replica", "wa_fullobj_ec",
                "wa_rand4k_replica", "wa_rand4k_ec"):
        print(f"  {key:24s} {points[key]:8.3f} cluster bytes/logical byte")
        benchmark.extra_info[key] = round(points[key], 3)
    for key in ("read_p99_us_healthy", "read_p99_us_degraded"):
        print(f"  {key:24s} {points[key]:8.1f} us")
        benchmark.extra_info[key] = round(points[key], 1)
    for label, result in (("ec", drill_ec), ("replica", drill_replica)):
        pcts = result.storm_latency_us
        print(f"  storm[{label:7s}]          p50 {pcts['p50']:8.1f}  "
              f"p99 {pcts['p99']:8.1f} us  "
              f"(repaired={result.objects_pushed} obj)")
        benchmark.extra_info[f"storm_p50_us[{label}]"] = round(pcts["p50"], 1)
        benchmark.extra_info[f"storm_p99_us[{label}]"] = round(pcts["p99"], 1)
        benchmark.extra_info[f"objects_pushed[{label}]"] = \
            result.objects_pushed
    benchmark.extra_info["ec_repaired"] = drill_ec.ec_repaired
    benchmark.extra_info["osd_count"] = OSD_COUNT
