"""Experiment E2 — Fig. 3(b): random-write bandwidth vs IO size.

Reproduces the paper's write sweep: randwrite at queue depth 32 for the
LUKS2 baseline and the three per-sector metadata layouts.  Shape checks:
the baseline is fastest everywhere, the object-end layout tracks it within
roughly 1–25 %, OMAP is competitive only at the smallest IO sizes, and the
unaligned layout trails the object-end layout at small/medium IO sizes.
"""

from __future__ import annotations

from bench_common import sweep_config

from repro.analysis.overhead import LayoutSweep
from repro.analysis.report import format_bandwidth_table, to_csv


def test_fig3b_write_bandwidth(benchmark, write_sweep_results):
    results = write_sweep_results

    def representative_point():
        config = sweep_config(io_sizes=(64 * 1024,), layouts=("object-end",),
                              bytes_per_point=2 * 1024 * 1024)
        return LayoutSweep(config).run("write")

    benchmark.pedantic(representative_point, rounds=1, iterations=1)

    print()
    print(format_bandwidth_table(results))
    print()
    print(to_csv(results))

    sizes = results.io_sizes()
    for io_size in sizes:
        base = results.bandwidth("luks-baseline", io_size)
        benchmark.extra_info[f"write_mbps[baseline][{io_size}]"] = round(base, 1)
        for layout in ("unaligned", "object-end", "omap"):
            bw = results.bandwidth(layout, io_size)
            benchmark.extra_info[f"write_mbps[{layout}][{io_size}]"] = round(bw, 1)
            assert bw <= base * 1.02, (
                f"{layout} should not beat the baseline at {io_size} B")

    # Who wins: object-end beats OMAP for everything beyond the smallest IO,
    # and beats unaligned at small/medium IO sizes (the paper's headline).
    for io_size in sizes[1:]:
        assert (results.bandwidth("object-end", io_size)
                >= results.bandwidth("omap", io_size)), (
            f"object-end should outperform OMAP at {io_size} B")
    for io_size in (s for s in sizes if s <= 256 * 1024):
        assert (results.bandwidth("object-end", io_size)
                >= results.bandwidth("unaligned", io_size)), (
            f"object-end should outperform unaligned at {io_size} B")

    baseline_peak = max(bw for _s, bw in results.series("luks-baseline"))
    benchmark.extra_info["baseline_peak_write_mbps"] = round(baseline_peak, 1)
    assert baseline_peak > 500.0, "baseline write bandwidth should reach ~1 GB/s scale"
