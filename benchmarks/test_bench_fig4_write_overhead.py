"""Experiment E3 — Fig. 4: write performance overhead vs the LUKS2 baseline.

Derived from the Fig. 3(b) write sweep: for every IO size, the percentage
of write bandwidth lost by each per-sector metadata layout relative to the
baseline.  Shape checks from the paper:

* object-end: roughly 1–22 % depending on IO size, shrinking as IO grows;
* OMAP: the best option at the smallest IO size, but the overhead grows
  significantly with IO size (the key-value store becomes the bottleneck);
* unaligned: worse than object-end for small/medium IO sizes because of
  read-modify-write turns.
"""

from __future__ import annotations

from bench_common import sweep_config

from repro.analysis.overhead import LayoutSweep, overhead_percent
from repro.analysis.report import format_overhead_table


def test_fig4_write_overhead(benchmark, write_sweep_results):
    results = write_sweep_results

    def representative_point():
        config = sweep_config(io_sizes=(4 * 1024,),
                              layouts=("luks-baseline", "object-end"),
                              bytes_per_point=1 * 1024 * 1024)
        return LayoutSweep(config).run("write")

    benchmark.pedantic(representative_point, rounds=1, iterations=1)

    print()
    print(format_overhead_table(results))

    sizes = results.io_sizes()
    smallest, largest = sizes[0], sizes[-1]

    object_end = {s: overhead_percent(results, "object-end", s) for s in sizes}
    omap = {s: overhead_percent(results, "omap", s) for s in sizes}
    unaligned = {s: overhead_percent(results, "unaligned", s) for s in sizes}
    for name, series in (("object_end", object_end), ("omap", omap),
                         ("unaligned", unaligned)):
        for size, value in series.items():
            benchmark.extra_info[f"overhead_pct[{name}][{size}]"] = round(value, 2)

    # Paper headline: object-end overhead is 1%-22% depending on IO size.
    assert max(object_end.values()) <= 30.0, (
        "object-end write overhead should stay within ~1-25%")
    assert object_end[largest] <= 5.0, (
        "object-end overhead should become marginal for multi-MiB writes")
    assert object_end[smallest] >= 5.0, (
        "object-end overhead should be clearly visible at 4 KiB")

    # OMAP is best at the smallest IO size but degrades sharply with size.
    assert omap[smallest] <= object_end[smallest], (
        "OMAP should be the cheapest option at the smallest IO size")
    assert omap[largest] >= 25.0, (
        "OMAP overhead should grow significantly for large IOs")
    assert omap[largest] > object_end[largest], (
        "OMAP should be far worse than object-end at the largest IO size")

    # Unaligned pays for read-modify-writes at small/medium IO sizes.
    for size in (s for s in sizes if s <= 256 * 1024):
        assert unaligned[size] >= object_end[size] - 1.0, (
            f"unaligned should not beat object-end at {size} B")
