"""Experiment E9 — boot-storm fan-out over one encrypted golden image.

The killer production deployment of client-side encrypted virtual disks:
one protected golden snapshot, N per-client COW clones, each clone under
its own LUKS key (librbd layered encryption, the authors' upstream Ceph
contribution).  Two phases bound the scenario:

* **read-mostly boot storm** — every client random-reads its freshly
  cloned (empty) image, so *all* data is served by descending the chain
  into the shared parent: the clone tax on reads is the per-object
  existence discovery plus the parent-layer decryption.  A flattened
  control run on the same cluster shows the tax directly.
* **write-heavy copyup phase** — every client random-writes its clone,
  so first touches pay librbd-style copyup (full backing object read
  from the parent + one atomic child transaction re-encrypted under the
  child's key); re-touching warm objects costs nothing extra.

All numbers are simulated and deterministic (seeded workloads, seeded
IVs), so the committed ``BENCH_clone.json`` baseline is gated at ±10%
drift in CI next to the other baselines.
"""

from __future__ import annotations

from repro import api
from repro.clone import clone_fanout
from repro.util import KIB, MIB
from repro.workload.cluster_runner import ClusterWorkloadRunner
from repro.workload.runner import prefill_image
from repro.workload.spec import WorkloadSpec

LAYOUT = "object-end"
IMAGE_SIZE = 4 * MIB
OBJECT_SIZE = 512 * KIB
NUM_CLIENTS = 8
QUEUE_DEPTH = 8
PHASE_BYTES = 2 * MIB       # per client, per phase


def _golden_cluster(label):
    cluster = api.make_cluster(osd_count=3, replica_count=3)
    golden, _info = api.create_encrypted_image(
        cluster, "golden", IMAGE_SIZE, b"golden-passphrase",
        encryption_format=LAYOUT, cipher_suite="blake2-xts-sim",
        object_size=OBJECT_SIZE,
        random_seed=f"clone-bench-{label}".encode("utf-8"))
    prefill_image(golden)
    golden.create_snapshot("base")
    golden.protect_snapshot("base")
    return cluster


def _fanout(cluster, label, flatten=False):
    clones = clone_fanout(
        cluster, "golden", "base", count=NUM_CLIENTS,
        passphrase_for=lambda i, d: f"clone-{i}-{d}".encode("utf-8"),
        parent_passphrase=b"golden-passphrase",
        name_format="{parent}-" + label + "{i}",
        random_seed_prefix=f"clone-bench-{label}".encode("utf-8"))
    if flatten:
        for clone in clones:
            clone.flatten()
    return clones


def _spec(name, rw, seed):
    return WorkloadSpec(name=name, rw=rw, io_size=4 * KIB,
                        queue_depth=QUEUE_DEPTH,
                        total_bytes=PHASE_BYTES, seed=seed,
                        num_clients=NUM_CLIENTS, parent_image="golden")


def test_clone_fanout_boot_storm(benchmark):
    """Read-mostly phase: N clients booting off one golden image, layered
    vs flattened control on identical clusters."""
    points = {}

    def storm():
        cluster = _golden_cluster("read")
        layered = ClusterWorkloadRunner(cluster).run(
            _fanout(cluster, "vm"), _spec("boot-storm", "randread", 71),
            layout_name=LAYOUT)
        control_cluster = _golden_cluster("read-flat")
        flattened = ClusterWorkloadRunner(control_cluster).run(
            _fanout(control_cluster, "flat", flatten=True),
            _spec("boot-storm-flat", "randread", 71), layout_name=LAYOUT)
        points["layered"], points["flattened"] = layered, flattened
        return points

    benchmark.pedantic(storm, rounds=1, iterations=1)

    layered, flattened = points["layered"], points["flattened"]
    parent_reads = layered.counter("clone.parent_reads")
    print()
    print(f"boot storm: {NUM_CLIENTS} clients x {PHASE_BYTES // MIB} MiB "
          f"random 4 KiB reads off one golden image:")
    print(f"  layered   {layered.bandwidth_mbps:8.1f} MiB/s  "
          f"p99={layered.percentile('p99'):8.1f} us  "
          f"parent reads {parent_reads:6.0f}")
    print(f"  flattened {flattened.bandwidth_mbps:8.1f} MiB/s  "
          f"p99={flattened.percentile('p99'):8.1f} us")
    benchmark.extra_info["layered_read_mbps"] = round(layered.bandwidth_mbps, 1)
    benchmark.extra_info["flattened_read_mbps"] = round(
        flattened.bandwidth_mbps, 1)
    benchmark.extra_info["parent_reads"] = round(parent_reads)
    benchmark.extra_info["layered_p99_us"] = round(
        layered.percentile("p99"), 1)

    # Every read of a fresh clone must come through the chain.
    assert parent_reads > 0
    assert layered.counter("clone.copyups") == 0
    assert flattened.counter("clone.parent_reads") == 0
    # The chain-descent tax is real but must stay a tax, not a cliff.
    assert flattened.bandwidth_mbps >= layered.bandwidth_mbps
    assert layered.bandwidth_mbps * 5 >= flattened.bandwidth_mbps, (
        "layered reads fell more than 5x behind the flattened control")


def test_clone_fanout_copyup_storm(benchmark):
    """Write-heavy phase: first touches pay copyup, warm objects do not."""
    points = {}

    def storm():
        cluster = _golden_cluster("write")
        runner = ClusterWorkloadRunner(cluster)
        clones = _fanout(cluster, "vm")
        cold = runner.run(clones, _spec("copyup-cold", "randwrite", 72),
                          layout_name=LAYOUT)
        warm = runner.run(clones, _spec("copyup-warm", "randwrite", 73),
                          layout_name=LAYOUT)
        points["cold"], points["warm"] = cold, warm
        return points

    benchmark.pedantic(storm, rounds=1, iterations=1)

    cold, warm = points["cold"], points["warm"]
    objects_per_clone = IMAGE_SIZE // OBJECT_SIZE
    print()
    print(f"copyup storm: {NUM_CLIENTS} clients x {PHASE_BYTES // MIB} MiB "
          f"random 4 KiB writes on fresh clones:")
    print(f"  cold  {cold.bandwidth_mbps:8.1f} MiB/s  "
          f"copyups {cold.counter('clone.copyups'):5.0f}  "
          f"copyup bytes {cold.counter('clone.copyup_bytes') / MIB:7.1f} MiB")
    print(f"  warm  {warm.bandwidth_mbps:8.1f} MiB/s  "
          f"copyups {warm.counter('clone.copyups'):5.0f}")
    benchmark.extra_info["cold_write_mbps"] = round(cold.bandwidth_mbps, 1)
    benchmark.extra_info["warm_write_mbps"] = round(warm.bandwidth_mbps, 1)
    benchmark.extra_info["cold_copyups"] = round(cold.counter("clone.copyups"))
    benchmark.extra_info["cold_copyup_mib"] = round(
        cold.counter("clone.copyup_bytes") / MIB, 1)

    # Cold writes must copy up (and at most once per object per clone).
    assert cold.counter("clone.copyups") > 0
    assert (cold.counter("clone.copyups")
            <= NUM_CLIENTS * objects_per_clone)
    # Warm clones are fully materialized: no further copyups, faster writes.
    assert warm.counter("clone.copyups") == 0
    assert warm.bandwidth_mbps > cold.bandwidth_mbps
