"""Shared helpers for the benchmark harness (imported by conftest and the
individual benchmark modules)."""

from __future__ import annotations

import os

from repro.analysis.overhead import SweepConfig
from repro.util import KIB, MIB
from repro.workload.spec import PAPER_IO_SIZES

#: reduced sweep used unless REPRO_BENCH_FULL=1
REDUCED_IO_SIZES = (4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB, 1024 * KIB,
                    4096 * KIB)


def bench_full() -> bool:
    """True when the full paper sweep was requested via the environment."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")


def sweep_config(**overrides) -> SweepConfig:
    """The sweep configuration used by the figure benchmarks."""
    if bench_full():
        base = dict(io_sizes=PAPER_IO_SIZES, image_size=64 * MIB,
                    bytes_per_point=16 * MIB, max_ios=256)
    else:
        base = dict(io_sizes=REDUCED_IO_SIZES, image_size=32 * MIB,
                    bytes_per_point=8 * MIB, max_ios=128)
    base.update(overrides)
    return SweepConfig(**base)
