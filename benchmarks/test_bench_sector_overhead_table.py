"""Experiment E4 — §3.3 analytic sector-access overhead.

The paper reasons about the minimum number of physical sectors per IO:
"in a 4KB write/read, a minimum of two physical disk sectors need to be
accessed (one for the data and one for the IV) versus one in the baseline.
Whereas a 32KB IO typically requires 9 sectors to be accessed versus 8 in
the baseline."  This benchmark regenerates that table from the analytic
model and pins those two data points exactly.
"""

from __future__ import annotations

from repro.analysis.report import ascii_table
from repro.analysis.sectors import SectorAccessModel, theoretical_overhead_table
from repro.util import KIB, MIB, format_size
from repro.workload.spec import PAPER_IO_SIZES


def test_sector_overhead_table(benchmark):
    model = SectorAccessModel()

    rows = benchmark.pedantic(
        lambda: theoretical_overhead_table(PAPER_IO_SIZES, model),
        rounds=3, iterations=1)

    table_rows = []
    for row in rows:
        table_rows.append([
            format_size(int(row["io_size"])),
            int(row["baseline_sectors"]),
            int(row["object_end_sectors"]),
            f"{row['object_end_overhead_pct']:.1f}%",
            int(row["unaligned_sectors"]),
            f"{row['unaligned_overhead_pct']:.1f}%",
            int(row["omap_keys"]),
        ])
    print()
    print(ascii_table(["IO size", "baseline", "object-end", "oe ovh",
                       "unaligned", "ua ovh", "omap keys"], table_rows))

    # The two data points the paper states explicitly (§3.3).
    assert model.baseline_sectors(4 * KIB) == 1
    assert model.object_end_sectors(4 * KIB) == 2
    assert model.baseline_sectors(32 * KIB) == 8
    assert model.object_end_sectors(32 * KIB) == 9

    # The relative overhead decreases monotonically with IO size.
    overheads = [model.overhead_percent("object-end", size)
                 for size in PAPER_IO_SIZES]
    assert all(a >= b for a, b in zip(overheads, overheads[1:]))
    benchmark.extra_info["object_end_overhead_4k_pct"] = overheads[0]
    benchmark.extra_info["object_end_overhead_4m_pct"] = overheads[-1]
    assert overheads[0] == 100.0
    assert overheads[-1] < 1.0

    # OMAP key count equals the number of encryption blocks.
    assert model.omap_keys(4 * MIB) == 1024
