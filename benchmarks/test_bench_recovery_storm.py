"""Experiment E11 — recovery storm: client tail latency during rebuild.

A production fleet does not stop serving while an OSD is rebuilt: backfill
pushes compete with client I/O for the same OSD CPUs and the cluster
network.  This benchmark runs the full failure drill (kill -> degraded ->
rebuild -> healthy) at fleet scale (100 OSDs, 3-way replication, host
failure domains) for each kill stage and replays the client ops *and* the
backfill pushes through the event engine together, reporting the client
p50/p95/p99 **during the rebuild storm**.

Everything is deterministic (seeded workload, seeded kill point, simulated
time), so the committed ``BENCH_recovery.json`` baseline is gated in CI at
+-10% drift: a change that silently makes recovery storms hurt client tail
latency more — or recover less data — moves these numbers and fails the
gate.
"""

from __future__ import annotations

from repro.faults import REPLICATED_KILL_STAGES
from repro.faults.drill import run_failure_drill

SEED = 2026
OSD_COUNT = 100


def test_recovery_storm_tail_latency(benchmark):
    """p99 of client ops while backfill traffic shares the cluster."""
    points = {}

    def drill_all_stages():
        for stage in REPLICATED_KILL_STAGES:
            points[stage] = run_failure_drill(stage, SEED,
                                              osd_count=OSD_COUNT)
        return points

    benchmark.pedantic(drill_all_stages, rounds=1, iterations=1)

    print()
    print(f"failure drill at {OSD_COUNT} OSDs (seed {SEED}): client latency "
          f"during rebuild storm:")
    for stage, result in points.items():
        assert result.ok, f"{stage}: {result.summary()}"
        assert result.fired, f"{stage}: armed fault never fired"
        pcts = result.storm_latency_us
        print(f"  {stage:24s} p50 {pcts['p50']:8.1f}  p95 {pcts['p95']:8.1f}"
              f"  p99 {pcts['p99']:8.1f} us  "
              f"(acked={result.acked_writes}, degraded_reads="
              f"{result.degraded_reads}, pushed={result.objects_pushed} obj/"
              f"{result.bytes_pushed} B)")
        key = stage.replace("kill-", "").replace("-mid-txn", "")
        benchmark.extra_info[f"p50_us[{key}]"] = round(pcts["p50"], 1)
        benchmark.extra_info[f"p99_us[{key}]"] = round(pcts["p99"], 1)
        benchmark.extra_info[f"acked_writes[{key}]"] = result.acked_writes
        benchmark.extra_info[f"degraded_reads[{key}]"] = result.degraded_reads
        benchmark.extra_info[f"objects_pushed[{key}]"] = result.objects_pushed
        benchmark.extra_info[f"bytes_pushed[{key}]"] = result.bytes_pushed
        # The storm must actually show up in the tail: p99 during rebuild
        # sits above the healthy median by construction.
        assert pcts["p99"] > pcts["p50"] > 0

    benchmark.extra_info["osd_count"] = OSD_COUNT
