"""Experiment E6 — queue-depth sweep through the batched I/O engine.

The paper's testbed (and any production Ceph client) runs at queue depths
well above 1; the batched engine models that regime by coalescing up to QD
requests into one RADOS transaction per object.  This benchmark sweeps
QD in {1, 4, 16} for 4 KiB random writes on the object-end layout and
checks that (a) deeper queues amortize the fixed per-transaction costs
into measurably higher bandwidth and (b) the amortization is visible in
the ledger (fewer transactions, more extents per transaction).
"""

from __future__ import annotations

from bench_common import sweep_config

from repro.analysis.overhead import LayoutSweep

QUEUE_DEPTHS = (1, 4, 16)
IO_SIZE = 4 * 1024


def _run_point(queue_depth):
    config = sweep_config(io_sizes=(IO_SIZE,), layouts=("object-end",),
                          bytes_per_point=2 * 1024 * 1024,
                          queue_depth=queue_depth, batched=True)
    results = LayoutSweep(config).run("write")
    return results.results["object-end"][IO_SIZE]


def test_queue_depth_sweep_batched_write(benchmark):
    points = {}

    def sweep():
        for queue_depth in QUEUE_DEPTHS:
            points[queue_depth] = _run_point(queue_depth)
        return points

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print("batched randwrite 4 KiB, object-end layout:")
    for queue_depth in QUEUE_DEPTHS:
        result = points[queue_depth]
        txns = result.counter("rados.transactions")
        mean_batch = (result.counter("engine.batched_blocks")
                      / max(result.counter("engine.batches"), 1))
        print(f"  qd={queue_depth:3d}  {result.bandwidth_mbps:8.1f} MiB/s  "
              f"txns={txns:6.0f}  blocks/batch={mean_batch:5.1f}")
        benchmark.extra_info[f"write_mbps[qd={queue_depth}]"] = round(
            result.bandwidth_mbps, 1)
        benchmark.extra_info[f"rados_txns[qd={queue_depth}]"] = round(txns)

    # Deeper queues mean fewer transactions and strictly better bandwidth.
    for shallow, deep in zip(QUEUE_DEPTHS, QUEUE_DEPTHS[1:]):
        assert (points[deep].counter("rados.transactions")
                < points[shallow].counter("rados.transactions")), (
            f"qd={deep} should need fewer transactions than qd={shallow}")
        assert (points[deep].bandwidth_mbps
                > points[shallow].bandwidth_mbps), (
            f"qd={deep} should outperform qd={shallow}")

    # Random 4 KiB writes scatter each window over all the image's objects
    # (one transaction per object per window), so the txn saving is bounded
    # by the object count; >= 2x fewer at depth 16 shows real coalescing.
    # The sequential case reaches the full 16x (tests/engine).
    assert (points[16].counter("rados.transactions") * 2
            <= points[1].counter("rados.transactions"))


def test_queue_depth_one_matches_scalar_path(benchmark):
    """The engine at QD 1 issues exactly one transaction per request, like
    the scalar path (for these block-aligned writes; unaligned requests
    would still see the engine's combined head+tail RMW read)."""

    def run_both():
        scalar = LayoutSweep(sweep_config(
            io_sizes=(IO_SIZE,), layouts=("object-end",),
            bytes_per_point=1024 * 1024, queue_depth=1)).run("write")
        batched = LayoutSweep(sweep_config(
            io_sizes=(IO_SIZE,), layouts=("object-end",),
            bytes_per_point=1024 * 1024, queue_depth=1,
            batched=True)).run("write")
        return (scalar.results["object-end"][IO_SIZE],
                batched.results["object-end"][IO_SIZE])

    scalar_point, batched_point = benchmark.pedantic(run_both, rounds=1,
                                                     iterations=1)
    assert (batched_point.counter("rados.transactions")
            == scalar_point.counter("rados.transactions"))
    benchmark.extra_info["qd1_scalar_mbps"] = round(
        scalar_point.bandwidth_mbps, 1)
    benchmark.extra_info["qd1_batched_mbps"] = round(
        batched_point.bandwidth_mbps, 1)
