#!/usr/bin/env python3
"""Validate a Prometheus text exposition file (the CI obs-smoke gate).

Checks the subset of the exposition format the exporter
(:func:`repro.obs.export.to_prometheus`) promises:

* every non-comment line parses as ``name{labels} value`` with a legal
  metric name, legal label names and float-parseable value;
* every sample is preceded by matching ``# HELP`` / ``# TYPE`` comments
  (one pair per family, TYPE one of counter/gauge/histogram);
* counters are suffixed ``_total``; histograms expose ``_bucket`` series
  with cumulative, monotonically non-decreasing counts ending in a
  ``le="+Inf"`` bucket that equals ``_count``;
* no duplicate series: a (name, label set) pair may appear at most once.

Stdlib only, importable (``tests/tools/test_check_prom_exposition.py``).

Usage::

    python tools/check_prom_exposition.py metrics.prom [more.prom ...]
"""

from __future__ import annotations

import argparse
import re
import sys
from typing import Dict, List, Tuple

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)$")
LABEL_PAIR = re.compile(r'^(?P<key>[^=]+)="(?P<value>[^"]*)"$')
TYPES = ("counter", "gauge", "histogram")
#: histogram sample suffixes that attach to a ``# TYPE ... histogram``
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


class ExpositionError(AssertionError):
    """A line of the exposition violated the format contract."""


def _parse_labels(body: str, line_no: int) -> Tuple[Tuple[str, str], ...]:
    if not body:
        return ()
    pairs = []
    for chunk in body.split(","):
        match = LABEL_PAIR.match(chunk)
        if match is None:
            raise ExpositionError(f"line {line_no}: bad label pair {chunk!r}")
        key = match.group("key")
        if not LABEL_NAME.match(key):
            raise ExpositionError(f"line {line_no}: bad label name {key!r}")
        pairs.append((key, match.group("value")))
    return tuple(pairs)


def _family_of(name: str, types: Dict[str, str]) -> str:
    """Resolve a sample name to its declared family name."""
    if name in types:
        return name
    for suffix in HIST_SUFFIXES:
        base = name[:-len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) == "histogram":
            return base
    raise ExpositionError(f"sample {name!r} has no # TYPE declaration")


def validate_exposition(text: str) -> int:
    """Validate one exposition document; returns the number of samples."""
    types: Dict[str, str] = {}
    helped: Dict[str, bool] = {}
    seen: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], int] = {}
    buckets: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], List[float]] = {}
    counts: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    samples = 0
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not METRIC_NAME.match(parts[2]):
                raise ExpositionError(f"line {line_no}: malformed HELP line")
            if parts[2] in helped:
                raise ExpositionError(
                    f"line {line_no}: duplicate HELP for {parts[2]}")
            helped[parts[2]] = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in TYPES:
                raise ExpositionError(f"line {line_no}: malformed TYPE line")
            if parts[2] in types:
                raise ExpositionError(
                    f"line {line_no}: duplicate TYPE for {parts[2]}")
            if parts[2] not in helped:
                raise ExpositionError(
                    f"line {line_no}: TYPE for {parts[2]} precedes HELP")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = SAMPLE_LINE.match(line)
        if match is None:
            raise ExpositionError(f"line {line_no}: unparseable sample "
                                  f"{line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", line_no)
        raw = match.group("value")
        try:
            value = float(raw)
        except ValueError:
            raise ExpositionError(
                f"line {line_no}: non-numeric value {raw!r}") from None
        family = _family_of(name, types)
        if types[family] == "counter":
            if not family.endswith("_total"):
                raise ExpositionError(
                    f"counter {family!r} is not suffixed _total")
            if value < 0:
                raise ExpositionError(
                    f"line {line_no}: negative counter value {value}")
        key = (name, labels)
        if key in seen:
            raise ExpositionError(
                f"line {line_no}: duplicate series {name}"
                f"{dict(labels)} (first at line {seen[key]})")
        seen[key] = line_no
        samples += 1
        if name == family + "_bucket" and types[family] == "histogram":
            rest = tuple(pair for pair in labels if pair[0] != "le")
            buckets.setdefault((family, rest), []).append(value)
        if name == family + "_count" and types[family] == "histogram":
            counts[(family, labels)] = value
    for (family, rest), series in sorted(buckets.items()):
        for lower, upper in zip(series, series[1:]):
            if upper < lower:
                raise ExpositionError(
                    f"histogram {family}{dict(rest)}: bucket counts "
                    f"decrease ({lower} -> {upper})")
        total = counts.get((family, rest))
        if total is None:
            raise ExpositionError(
                f"histogram {family}{dict(rest)}: missing _count series")
        if series[-1] != total:
            raise ExpositionError(
                f"histogram {family}{dict(rest)}: +Inf bucket "
                f"{series[-1]} != _count {total}")
    return samples


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="Prometheus text exposition files to validate")
    args = parser.parse_args(argv)
    for path in args.paths:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            samples = validate_exposition(text)
        except ExpositionError as exc:
            print(f"FAIL {path}: {exc}")
            return 1
        print(f"ok {path}: {samples} samples valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
