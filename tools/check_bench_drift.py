#!/usr/bin/env python3
"""Gate benchmark results against the committed baselines.

Extracted from the inline CI step so the floor-vs-drift semantics are
importable and unit-testable (``tests/tools/test_check_bench_drift.py``).

Two kinds of numeric ``extra_info`` metrics, two gates:

* ``speedup_*`` keys are measured timing ratios.  They are gated as a
  **floor**, not a drift band: fail only when the advantage falls below
  the asserted 5x minimum or halves versus the committed baseline
  (robust to runner noise -- a speedup growing is never a failure).
* Every other numeric key is a deterministic model output (counters,
  modelled latencies) and must stay within **+-10% drift** of the
  baseline.

Non-numeric values are ignored.  A benchmark or metric disappearing is
always a failure: renames must update the committed baseline.

Usage::

    python tools/check_bench_drift.py bench-results.json \
        BENCH_multi_client.json BENCH_crypto.json ...
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Iterable, List

#: drift tolerance for deterministic model metrics
DRIFT_TOLERANCE = 0.10
#: asserted minimum for measured ``speedup_*`` ratios
SPEEDUP_FLOOR = 5.0


class DriftError(AssertionError):
    """A benchmark metric fell outside its gate."""


def speedup_floor(baseline_value: float) -> float:
    """The pass floor for a measured speedup ratio.

    The larger of the asserted 5x minimum and half the committed
    baseline, so a regression to "still fast but half as fast" fails
    while runner noise does not.
    """
    return max(SPEEDUP_FLOOR, baseline_value / 2)


def relative_drift(baseline_value: float, current_value: float) -> float:
    """Symmetric relative drift; a zero baseline only matches zero."""
    if baseline_value:
        return abs(current_value - baseline_value) / abs(baseline_value)
    return 1.0 if current_value else 0.0


def load_extra_info(path: str) -> Dict[str, Dict[str, object]]:
    """Map benchmark name -> extra_info from a pytest-benchmark JSON file."""
    with open(path) as handle:
        data = json.load(handle)
    return {b["name"]: b["extra_info"] for b in data["benchmarks"]}


def compare_metric(name: str, key: str, baseline_value: float,
                   current_value: float, log: List[str]) -> None:
    """Gate one numeric metric; raises :class:`DriftError` on failure."""
    if key.startswith("speedup_"):
        floor = speedup_floor(baseline_value)
        log.append(f"{name}:{key}: baseline {baseline_value} now "
                   f"{current_value} (floor {floor})")
        if current_value < floor:
            raise DriftError(
                f"{name}:{key} fell to {current_value} (< {floor})")
        return
    drift = relative_drift(baseline_value, current_value)
    log.append(f"{name}:{key}: baseline {baseline_value} now "
               f"{current_value} (drift {drift:.1%})")
    if drift >= DRIFT_TOLERANCE:
        raise DriftError(f"{name}:{key} drifted {drift:.1%}")


def compare_baseline(baseline: Dict[str, Dict[str, object]],
                     current: Dict[str, Dict[str, object]],
                     log: List[str]) -> None:
    """Gate every numeric metric of one baseline file against ``current``."""
    for name, info in baseline.items():
        now = current.get(name)
        if now is None:
            raise DriftError(f"benchmark {name} disappeared")
        for key, value in info.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if key not in now:
                raise DriftError(f"{name}: metric {key} disappeared")
            compare_metric(name, key, value, now[key], log)


def main(argv: Iterable[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="bench-results.json from the CI run")
    parser.add_argument("baselines", nargs="+",
                        help="committed BENCH_*.json baseline files")
    args = parser.parse_args(None if argv is None else list(argv))

    current = load_extra_info(args.results)
    log: List[str] = []
    try:
        for baseline_file in args.baselines:
            compare_baseline(load_extra_info(baseline_file), current, log)
            log.append(f"{baseline_file}: benchmark trajectory OK")
    except DriftError as exc:
        print("\n".join(log))
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print("\n".join(log))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
